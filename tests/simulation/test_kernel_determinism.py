"""Same-instant ordering regressions for the DES kernel.

The kernel's determinism contract: events scheduled for the same
simulated instant fire in *schedule order* (the monotone ``eid``
counter breaks ties, never object identity or hash order).  Every
optimisation of the hot path — tuple heap entries, deferred-callback
tuples replacing wrapper events, the inlined ``Timeout`` constructor —
must conserve one eid per scheduled occurrence, or same-instant
ordering (and with it every seeded experiment) silently shifts.
These tests pin that contract directly.
"""

# Import through the package so the suite exercises whichever kernel
# REPRO_SIM_KERNEL selected (kernels must not be mixed in one sim).
from repro.simulation import Event, Interrupt, Simulator


def test_same_instant_timeouts_fire_in_schedule_order():
    sim = Simulator()
    fired = []

    def waiter(tag):
        yield sim.timeout(5.0)
        fired.append(tag)

    for tag in range(8):
        sim.process(waiter(tag))
    sim.run()
    assert fired == list(range(8))


def test_same_instant_mixed_delays_fire_in_schedule_order():
    # Two paths reach t=6: a direct 6ms timeout scheduled first, and a
    # 3+3ms chain scheduled second.  The chain's second timeout is
    # scheduled *later* (at t=3), so it must fire second at t=6.
    sim = Simulator()
    fired = []

    def direct():
        yield sim.timeout(6.0)
        fired.append("direct")

    def chained():
        yield sim.timeout(3.0)
        yield sim.timeout(3.0)
        fired.append("chained")

    sim.process(direct())
    sim.process(chained())
    sim.run()
    assert fired == ["direct", "chained"]


def test_succeed_order_decides_same_instant_resume_order():
    sim = Simulator()
    a, b = sim.event(), sim.event()
    fired = []

    def waiter(event, tag):
        yield event
        fired.append(tag)

    def trigger():
        yield sim.timeout(1.0)
        # b succeeds before a: resume order must follow succeed order,
        # not process-creation order.
        b.succeed("b")
        a.succeed("a")

    sim.process(waiter(a, "a"))
    sim.process(waiter(b, "b"))
    sim.process(trigger())
    sim.run()
    assert fired == ["b", "a"]


def test_already_fired_event_resumes_after_earlier_schedules():
    # Yielding an already-triggered event goes through the deferred
    # tuple path; it must still respect eid order against a timeout(0)
    # scheduled first at the same instant.
    sim = Simulator()
    fired = []
    done = Event(sim)
    done.succeed("ready")

    def zero_timeout():
        yield sim.timeout(0.0)
        fired.append("timeout0")

    def eager():
        value = yield done
        fired.append(value)

    sim.process(zero_timeout())
    sim.process(eager())
    sim.run()
    assert fired == ["timeout0", "ready"]


def test_interleaved_schedule_order_is_stable_across_runs():
    def run_once():
        sim = Simulator()
        fired = []

        def worker(tag, delay):
            yield sim.timeout(delay)
            fired.append((sim.now, tag))
            yield sim.timeout(delay)
            fired.append((sim.now, tag))

        # Deliberate eid collisions: several workers share each delay.
        for tag in range(6):
            sim.process(worker(tag, 2.0 + (tag % 2)))
        sim.run()
        return fired

    first = run_once()
    assert run_once() == first
    # Within one instant, workers fire in creation order.
    by_time = {}
    for now, tag in first:
        by_time.setdefault(now, []).append(tag)
    for tags in by_time.values():
        assert tags == sorted(tags)


def test_interrupt_invalidates_pending_same_instant_resume():
    # A process that yields an already-fired event has a deferred
    # resume tuple sitting on the heap.  An interrupt issued at the
    # same instant must invalidate that pending resume (the wait-token
    # regression): the process sees only the Interrupt, never the
    # stale resume.
    sim = Simulator()
    outcome = []
    done = Event(sim)
    done.succeed("early")

    def victim():
        try:
            value = yield done  # already fired: deferred resume queued
            outcome.append(("resumed", value))
        except Interrupt as exc:
            outcome.append(("interrupted", exc.cause))

    proc = sim.process(victim())

    def attacker():
        # Starts after victim queued its deferred resume, still at t=0;
        # the interrupt's deferred throw lands *behind* the stale
        # resume in eid order, so only token invalidation saves us.
        proc.interrupt("bang")
        yield sim.timeout(0.0)

    sim.process(attacker())
    sim.run()
    assert outcome == [("interrupted", "bang")]


def test_events_processed_counts_every_pop():
    sim = Simulator()

    def proc():
        yield sim.timeout(1.0)
        yield sim.timeout(1.0)

    sim.process(proc())
    sim.run()
    # Deferred start, two timeouts, and the process-completion event.
    assert sim.events_processed == 4


# -- property tests: same-instant batch draining --------------------------
#
# ``Simulator.run`` drains every entry of one timestamp in a single pass
# (the clock is advanced once per distinct instant).  The contract: the
# batch is *observably identical* to the one-pop-at-a-time loop — pop
# order within the instant stays schedule order, entries pushed during
# the batch join it, and wait tokens still invalidate stale wakeups.
# These properties are exercised over seeded random schedules rather
# than hand-picked cases, deliberately forcing heavy eid collisions
# (delays are drawn from a tiny set so many processes land on the same
# instants).


def _random_trace(seed: int, spelling: str):
    """Run a random workload; return the (time, tag, step) fire trace.

    ``spelling`` selects bare-delay yields (``yield d``) or Timeout
    yields (``yield sim.timeout(d)``) — the two must be observably
    interchangeable (same trace, same clock, same event count).
    """
    import random

    rng = random.Random(seed)
    sim = Simulator()
    trace = []
    delays = (0.0, 1.0, 1.0, 2.0, 5.0)  # heavy same-instant collisions

    def worker(tag, plan):
        for step, delay in enumerate(plan):
            if spelling == "bare":
                yield delay
            else:
                yield sim.timeout(delay)
            trace.append((sim.now, tag, step))

    for tag in range(rng.randrange(2, 12)):
        plan = [rng.choice(delays) for _ in range(rng.randrange(1, 9))]
        sim.process(worker(tag, plan))
    sim.run()
    return trace, sim.now, sim.events_processed


def test_property_batch_drain_preserves_schedule_order():
    for seed in range(40):
        trace, _now, _events = _random_trace(seed, "bare")
        # Group by instant: within one timestamp, a worker's earlier-
        # scheduled wakeups fire before later-scheduled ones, and two
        # workers whose wakeups were scheduled at the same earlier
        # instant fire in schedule (creation) order.  Both reduce to:
        # the (tag, step) pairs of one instant that were scheduled at
        # the same prior instant appear in ascending tag order.
        by_instant = {}
        for now, tag, step in trace:
            by_instant.setdefault(now, []).append((tag, step))
        for fired in by_instant.values():
            per_tag = {}
            for tag, step in fired:
                per_tag.setdefault(tag, []).append(step)
            for steps in per_tag.values():
                assert steps == sorted(steps), (fired, steps)


def test_property_bare_delay_and_timeout_traces_identical():
    # The interchangeability contract behind the bare-delay fast path:
    # swapping ``yield d`` for ``yield sim.timeout(d)`` changes no
    # observable — fire order, clock, or events_processed.
    for seed in range(40):
        assert _random_trace(seed, "bare") == _random_trace(seed, "timeout")


def test_property_interrupt_tokens_survive_batch_drain():
    # Interrupt storms against sleeping processes, with interrupts and
    # wakeups colliding on the same instants: a process must never see
    # a wakeup from a wait it was already interrupted out of (the
    # wait-token rule), and must resume each wait at most once — even
    # though the stale heap entries are drained in the same batch as
    # the live ones.
    import random

    for seed in range(40):
        rng = random.Random(1000 + seed)
        sim = Simulator()
        n = rng.randrange(2, 7)
        log = [[] for _ in range(n)]
        procs = []

        def sleeper(tag):
            epoch = 0
            for _ in range(6):
                try:
                    yield rng.choice((0.0, 1.0, 2.0))
                    log[tag].append(("wake", epoch, sim.now))
                except Interrupt:
                    log[tag].append(("int", epoch, sim.now))
                    epoch += 1

        for tag in range(n):
            procs.append(sim.process(sleeper(tag)))

        def attacker():
            for _ in range(8):
                yield rng.choice((0.0, 1.0))
                victim = procs[rng.randrange(n)]
                victim.interrupt("storm")

        sim.process(attacker())
        sim.run()
        for tag in range(n):
            epoch = 0
            for kind, seen_epoch, _now in log[tag]:
                # Every entry is observed in the epoch the process was
                # actually in: a wake carrying a pre-interrupt epoch
                # would mean a stale wakeup slipped past its token.
                assert seen_epoch == epoch, log[tag]
                if kind == "int":
                    epoch += 1


def test_entries_pushed_mid_batch_join_the_instant():
    # A callback that schedules more same-instant work while its batch
    # is draining: run(until=now) must finish the whole cascade, not
    # strand the tail for a later call.
    sim = Simulator()
    fired = []

    def cascade(depth):
        if depth < 5:
            sim.process(tail(depth))

    def tail(depth):
        yield 0.0
        fired.append(depth)
        cascade(depth + 1)

    cascade(0)
    sim.run(until=0.0)
    assert fired == [0, 1, 2, 3, 4]
    assert sim.now == 0.0
