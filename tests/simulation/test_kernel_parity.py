"""Differential parity: compiled DES kernel vs. the pure reference.

The compiled kernel (``repro.simulation._corec``) is only acceptable if
it is *observably indistinguishable* from ``repro.simulation.kernel`` —
same fire order, same clock, same ``events_processed``, same exception
surfaces, same wait-token edge cases, and bit-identical end-to-end
experiment results.  Every test here runs one scenario under **both**
kernels inside one interpreter (via :func:`select_kernel`) and diffs
the outcomes.  The whole module skips when the extension is not built,
so tier-1 needs no C toolchain.
"""

import pytest

from repro.errors import DeadlockError, SimulationError
from repro.simulation import select as kernel_select
from repro.simulation.kernel import Interrupt

pytestmark = pytest.mark.skipif(
    not kernel_select.compiled_available(),
    reason="compiled kernel not built (python setup.py build_ext --inplace)",
)


@pytest.fixture
def diff_kernels():
    """Run ``scenario(kernel_module)`` under both kernels; return both.

    Restores the process's original kernel selection afterwards, so
    parity tests never leak a forced kernel into the rest of the suite.
    """
    before = kernel_select.requested_kernel()

    def run(scenario):
        outcomes = []
        for variant in ("pure", "compiled"):
            kernel_select.select_kernel(variant)
            outcomes.append(scenario(kernel_select.active_module()))
        return outcomes

    try:
        yield run
    finally:
        kernel_select.select_kernel(before)


# -- unit-level differential scenarios -------------------------------------


def test_mixed_schedule_trace_identical(diff_kernels):
    # Bare delays, timeouts, events succeeded out of creation order,
    # and an already-triggered event's deferred resume — the full
    # same-instant mix, traced under both kernels.
    def scenario(k):
        sim = k.Simulator()
        trace = []
        gate = sim.event()
        early = k.Event(sim)
        early.succeed("early")

        def sleeper(tag):
            yield 1.0
            trace.append((sim.now, tag))
            yield sim.timeout(0.0)
            trace.append((sim.now, tag, "zero"))

        def waiter(event, tag):
            value = yield event
            trace.append((sim.now, tag, value))

        def trigger():
            yield sim.timeout(1.0)
            gate.succeed("open")

        for tag in range(4):
            sim.process(sleeper(tag))
        sim.process(waiter(gate, "gate"))
        sim.process(waiter(early, "eager"))
        sim.process(trigger())
        sim.run()
        return trace, sim.now, sim.events_processed

    pure, compiled = diff_kernels(scenario)
    assert pure == compiled


def test_interrupt_edge_cases_identical(diff_kernels):
    # The wait-token gauntlet: interrupt a process waiting on a shared
    # event (callback detach), interrupt one with a deferred resume
    # already on the heap, and interrupt the same process twice at one
    # instant.  The surviving waiter must still fire.
    def scenario(k):
        sim = k.Simulator()
        log = []
        shared = sim.event()
        fired = k.Event(sim)
        fired.succeed("stale")

        def waiter(event, tag):
            try:
                value = yield event
                log.append((tag, "got", value, sim.now))
            except Interrupt as exc:
                log.append((tag, "int", exc.cause, sim.now))

        victims = [
            sim.process(waiter(shared, "shared-victim")),
            sim.process(waiter(shared, "shared-survivor")),
            sim.process(waiter(fired, "deferred-victim")),
        ]

        def attacker():
            victims[0].interrupt("one")
            victims[2].interrupt(cause="kw")
            victims[2].interrupt("again")  # double interrupt, same instant
            yield sim.timeout(2.0)
            shared.succeed("late")

        sim.process(attacker())
        sim.run()
        return sorted(log), sim.now, sim.events_processed

    pure, compiled = diff_kernels(scenario)
    assert pure == compiled


def test_stale_wakeup_clock_advance_identical(diff_kernels):
    # An interrupted bare-delay sleep leaves its (invalidated) heap
    # entry behind; popping it advances the clock without resuming the
    # process.  Both kernels must agree on that final clock.
    def scenario(k):
        sim = k.Simulator()
        log = []

        def sleeper():
            try:
                yield 100.0
                log.append("woke")
            except Interrupt:
                log.append(("int", sim.now))

        proc = sim.process(sleeper())

        def attacker():
            yield sim.timeout(10.0)
            proc.interrupt("early")

        sim.process(attacker())
        sim.run()
        return log, sim.now, sim.events_processed

    pure, compiled = diff_kernels(scenario)
    assert pure == compiled
    assert pure[1] == 100.0  # the stale entry still drains the heap


def test_error_surfaces_identical(diff_kernels):
    def scenario(k):
        sim = k.Simulator()
        surfaces = []
        try:
            sim.timeout(-1.0)
        except SimulationError:
            surfaces.append("negative-timeout")
        def stuck():
            yield sim.event()  # nobody ever succeeds it

        try:
            sim.run_until_complete(sim.process(stuck()))
        except DeadlockError:
            surfaces.append("deadlock")

        sim2 = k.Simulator()

        def runaway():
            while True:
                yield 1.0

        try:
            sim2.run_until_complete(sim2.process(runaway()), limit=5.0)
        except SimulationError:
            surfaces.append("time-limit")
        return surfaces

    pure, compiled = diff_kernels(scenario)
    assert pure == compiled == [
        "negative-timeout", "deadlock", "time-limit",
    ]


def test_run_until_peek_and_now_write_identical(diff_kernels):
    def scenario(k):
        sim = k.Simulator()
        fired = []

        def worker():
            for _ in range(4):
                yield 5.0
                fired.append(sim.now)

        sim.process(worker())
        sim.run(until=10.0)
        mid = (list(fired), sim.now, sim.peek())
        sim._now = 12.5  # tests nudge the clock directly; both allow it
        sim.run()
        return mid, list(fired), sim.now, sim.events_processed

    pure, compiled = diff_kernels(scenario)
    assert pure == compiled


def test_process_completion_values_identical(diff_kernels):
    def scenario(k):
        sim = k.Simulator()

        def child():
            yield 3.0
            return "payload"

        proc = sim.process(child())
        value = sim.run_until_complete(proc)
        return value, proc.triggered, proc.value, sim.now

    pure, compiled = diff_kernels(scenario)
    assert pure == compiled == ("payload", True, "payload", 3.0)


# -- end-to-end parity: bit-identical experiment cells ---------------------


def _canon(obj, depth=0):
    if depth > 8:
        return "<deep>"
    if isinstance(obj, dict):
        return {
            str(k): _canon(v, depth + 1)
            for k, v in sorted(obj.items(), key=lambda kv: str(kv[0]))
        }
    if isinstance(obj, (list, tuple)):
        return [_canon(v, depth + 1) for v in obj]
    if isinstance(obj, float):
        return repr(obj)  # repr round-trips: any ULP drift is a diff
    if isinstance(obj, (int, str, bool)) or obj is None:
        return obj
    if hasattr(obj, "_samples"):
        return _canon(list(obj._samples), depth + 1)
    return repr(obj)


def _run_dump(result):
    dump = {}
    for name in (
        "protocol", "workload", "completed", "crashed_attempts",
        "faulted_attempts", "median_ms", "p99_ms", "mean_ms",
        "throughput_per_s", "avg_log_bytes", "avg_db_bytes", "counters",
        "time_by_kind", "extras", "node_crashes", "orphaned_invocations",
        "recovered_orphans",
    ):
        value = getattr(result, name)
        if name == "extras" and isinstance(value, dict):
            # The kernel stamp is the one *intentional* difference.
            value = {k: v for k, v in value.items() if k != "sim_kernel"}
        dump[name] = _canon(value)
    dump["op_latency"] = _canon({
        k: v for k, v in result.metrics.items() if k.startswith("op_latency")
    })
    return dump


def _small_cells():
    """Scaled-down versions of the golden fig10/shard/chaos/failover cells."""
    from repro.config import SystemConfig
    from repro.harness import run_chaos_point, run_shard_point
    from repro.harness.failover import run_failover_point
    from repro.harness.micro import measure_op_latencies

    out = {}
    shard = run_shard_point(
        2, 600.0, config=SystemConfig(seed=91),
        duration_ms=600.0, warmup_ms=150.0, num_keys=200,
    )
    out["shard"] = _run_dump(shard)
    out["fig10"] = _canon(
        measure_op_latencies("boki", requests=120, num_keys=100)
    )
    chaos = run_chaos_point(
        "boki", 0.05, config=SystemConfig(seed=42),
        requests=100, num_keys=80,
    )
    out["chaos"] = {
        "violations": chaos.violations,
        "retries": chaos.retries,
        "crashes_fired": chaos.crashes_fired,
        "counters": _canon(chaos.counters),
    }
    failover = run_failover_point(
        "halfmoon-read", 250.0, config=SystemConfig(seed=42),
        rate_per_s=300.0, duration_ms=700.0,
    )
    out["failover"] = {
        "violations": failover.violations,
        "expected_bumps": failover.expected_bumps,
        "run": _run_dump(failover.result),
    }
    return out


def test_end_to_end_cells_bit_identical(diff_kernels):
    # The tentpole acceptance criterion, in-repo: fig10 + shards +
    # chaos + failover cells produce byte-identical canonical dumps
    # under both kernels (extras' sim_kernel stamp excluded).  Floats
    # are repr()-canonicalised, so even 1-ULP drift fails the diff.
    import json

    pure, compiled = diff_kernels(lambda _k: _small_cells())
    assert json.dumps(pure, sort_keys=True) == json.dumps(
        compiled, sort_keys=True
    )
