"""Seeded draw-sequence identity for the batched latency samplers.

The vectorised fast path (:class:`NormalDrawBatch` +
``LatencyModel.batched_sampler``) refills ``chunk`` standard normals at
a time via ``rng.standard_normal(chunk)``.  Its entire correctness
argument is *stream identity*: a refill consumes the generator's bit
stream exactly as the same number of scalar draws would, and
``rng.lognormal(mu, sigma)`` equals ``exp(mu + sigma * z)`` bit for
bit.  These tests pin that identity across refill boundaries — if it
ever breaks, every seeded experiment shifts silently.
"""

import math

import numpy as np
import pytest

from repro.config import SystemConfig
from repro.errors import ConfigError
from repro.runtime.services import LatencyProvider, RecordCache
from repro.simulation import NormalDrawBatch
from repro.simulation.latency import (
    ConstantLatency,
    LogNormalLatency,
    MixtureLatency,
    UniformLatency,
)

SEED = 20260808


def test_batch_matches_scalar_standard_normals_across_refills():
    # Draw well past several refill boundaries with a deliberately tiny
    # chunk; the sequence must equal sequential scalar draws from an
    # identically seeded generator, bit for bit.
    batch = NormalDrawBatch(np.random.default_rng(SEED), chunk=7)
    scalar = np.random.default_rng(SEED)
    got = [batch.next_normal() for _ in range(100)]
    want = [float(scalar.standard_normal()) for _ in range(100)]
    assert got == want
    assert batch.refills == math.ceil(100 / 7)


def test_lognormal_batched_sampler_matches_scalar_lognormal():
    model = LogNormalLatency(median_ms=2.0, p99_ms=9.0)
    batch = NormalDrawBatch(np.random.default_rng(SEED), chunk=5)
    sampler = model.batched_sampler(batch)
    scalar = np.random.default_rng(SEED)
    # Bit-equality, not approximate: rng.lognormal(mu, sigma) is
    # exactly exp(mu + sigma * standard_normal()).
    got = [sampler() for _ in range(64)]
    want = [model.sample(scalar) for _ in range(64)]
    assert got == want


def test_interleaved_models_share_one_stream_identically():
    # Several models fed from one batch interleave on one stream, in
    # draw order — exactly like scalar sampling against one generator.
    fast = LogNormalLatency(1.0, 3.0)
    slow = LogNormalLatency(10.0, 80.0)
    fixed = ConstantLatency(4.5)  # consumes zero draws
    batch = NormalDrawBatch(np.random.default_rng(SEED), chunk=3)
    samplers = [m.batched_sampler(batch) for m in (fast, slow, fixed)]
    scalar = np.random.default_rng(SEED)
    models = (fast, slow, fixed)
    for i in range(50):
        pick = i % 3
        assert samplers[pick]() == models[pick].sample(scalar)


def test_scaled_latency_propagates_batching():
    base = LogNormalLatency(2.0, 9.0)
    scaled = base.scaled(0.25)
    batch = NormalDrawBatch(np.random.default_rng(SEED), chunk=4)
    sampler = scaled.batched_sampler(batch)
    scalar = np.random.default_rng(SEED)
    got = [sampler() for _ in range(32)]
    want = [scaled.sample(scalar) for _ in range(32)]
    assert got == want


def test_degenerate_models_consume_no_draws():
    # sigma == 0 lognormal and ConstantLatency return without touching
    # the stream; the next real draw must be the stream's first.
    batch = NormalDrawBatch(np.random.default_rng(SEED))
    LogNormalLatency(3.0, 3.0).batched_sampler(batch)()
    ConstantLatency(1.0).batched_sampler(batch)()
    assert batch.refills == 0
    assert batch.next_normal() == float(
        np.random.default_rng(SEED).standard_normal()
    )


def test_unbatchable_models_return_none():
    batch = NormalDrawBatch(np.random.default_rng(SEED))
    uniform = UniformLatency(1.0, 2.0)
    assert uniform.batched_sampler(batch) is None
    # ScaledLatency propagates the refusal rather than batching around
    # an unbatchable base.
    assert uniform.scaled(2.0).batched_sampler(batch) is None
    mixture = MixtureLatency(ConstantLatency(1.0), ConstantLatency(2.0), 0.5)
    assert mixture.batched_sampler(batch) is None


def test_invalid_chunk_rejected():
    with pytest.raises(ConfigError):
        NormalDrawBatch(np.random.default_rng(SEED), chunk=0)


def test_provider_batched_samplers_match_scalar_provider():
    # End to end at the LatencyProvider level: every kind the service
    # backend charges, drawn batched vs. scalar on identically seeded
    # streams, stays bit-identical — including across a tiny chunk's
    # many refill boundaries.
    config = SystemConfig(seed=17)
    provider = LatencyProvider(config, RecordCache())
    result = provider.batched_samplers(np.random.default_rng(SEED), chunk=3)
    assert result is not None
    samplers, hit, miss = result
    scalar_provider = LatencyProvider(config, RecordCache())
    scalar = np.random.default_rng(SEED)
    kinds = sorted(samplers)
    for round_no in range(20):
        for kind in kinds:
            assert samplers[kind]() == scalar_provider.sample(kind, scalar), (
                kind, round_no,
            )
        assert hit() == scalar_provider._log_read_hit.sample(scalar)
        assert miss() == scalar_provider._log_read_miss.sample(scalar)
