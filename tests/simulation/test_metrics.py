"""Unit tests for measurement primitives."""

import pytest

from repro.errors import SimulationError
from repro.simulation import (
    Counter,
    LatencyRecorder,
    ThroughputMeter,
    TimeSeries,
    TimeWeightedGauge,
)


class TestLatencyRecorder:
    def test_percentiles(self):
        rec = LatencyRecorder()
        rec.extend(range(1, 101))
        assert rec.median() == pytest.approx(50.5)
        assert rec.p99() == pytest.approx(99.01)
        assert rec.mean() == pytest.approx(50.5)
        assert rec.count == 100

    def test_empty_recorder_raises(self):
        rec = LatencyRecorder("empty")
        with pytest.raises(SimulationError):
            rec.median()

    def test_negative_sample_rejected(self):
        rec = LatencyRecorder()
        with pytest.raises(SimulationError):
            rec.record(-0.1)

    def test_summary(self):
        rec = LatencyRecorder("ops")
        rec.extend([1.0, 2.0, 3.0])
        summary = rec.summary()
        assert summary.count == 3
        assert summary.median_ms == 2.0
        assert "ops" in str(summary)

    def test_merged(self):
        a = LatencyRecorder()
        b = LatencyRecorder()
        a.extend([1.0, 2.0])
        b.extend([3.0])
        merged = a.merged(b)
        assert merged.count == 3
        assert a.count == 2  # originals untouched


class TestCounter:
    def test_add_and_get(self):
        c = Counter()
        c.add("x")
        c.add("x", 4)
        assert c.get("x") == 5
        assert c.get("missing") == 0
        assert c.as_dict() == {"x": 5}

    def test_negative_rejected(self):
        c = Counter()
        with pytest.raises(SimulationError):
            c.add("x", -1)


class TestTimeWeightedGauge:
    def test_time_average_piecewise(self):
        g = TimeWeightedGauge("storage", start_time_ms=0.0,
                              initial_value=10.0)
        g.set(20.0, now_ms=10.0)   # 10 for [0,10)
        g.set(0.0, now_ms=20.0)    # 20 for [10,20)
        # average over [0, 40): (10*10 + 20*10 + 0*20) / 40 = 7.5
        assert g.time_average(40.0) == pytest.approx(7.5)

    def test_add_delta(self):
        g = TimeWeightedGauge("g")
        g.add(5.0, now_ms=1.0)
        g.add(-2.0, now_ms=2.0)
        assert g.value == 3.0

    def test_max_value_tracked(self):
        g = TimeWeightedGauge("g")
        g.set(7.0, 1.0)
        g.set(3.0, 2.0)
        assert g.max_value == 7.0

    def test_backwards_time_rejected(self):
        g = TimeWeightedGauge("g")
        g.set(1.0, 5.0)
        with pytest.raises(SimulationError):
            g.set(2.0, 4.0)

    def test_average_at_start_is_current_value(self):
        g = TimeWeightedGauge("g", start_time_ms=0.0, initial_value=4.0)
        assert g.time_average(0.0) == 4.0


class TestThroughputMeter:
    def test_rate(self):
        m = ThroughputMeter()
        for t in [0.0, 100.0, 200.0, 300.0]:
            m.record(t)
        assert m.count == 4
        # 4 completions over the 300 ms observed window.
        assert m.rate_per_sec() == pytest.approx(4 * 1000.0 / 300.0)

    def test_explicit_window(self):
        m = ThroughputMeter()
        m.record(10.0)
        m.record(20.0)
        assert m.rate_per_sec(window_ms=1000.0) == pytest.approx(2.0)

    def test_empty_meter(self):
        assert ThroughputMeter().rate_per_sec() == 0.0

    def test_single_sample_uses_min_window(self):
        # One completion has an observed span of zero, which used to
        # report a silent 0.0 rate; the floor (1 ms) now applies.
        m = ThroughputMeter()
        m.record(500.0)
        assert m.rate_per_sec() == pytest.approx(1 * 1000.0 / 1.0)

    def test_simultaneous_samples_use_min_window(self):
        m = ThroughputMeter(min_window_ms=10.0)
        m.record(42.0)
        m.record(42.0)
        assert m.rate_per_sec() == pytest.approx(2 * 1000.0 / 10.0)

    def test_min_window_floors_explicit_window(self):
        m = ThroughputMeter(min_window_ms=5.0)
        m.record(0.0)
        assert m.rate_per_sec(window_ms=1.0) == pytest.approx(
            1 * 1000.0 / 5.0
        )

    def test_non_positive_min_window_rejected(self):
        with pytest.raises(SimulationError):
            ThroughputMeter(min_window_ms=0.0)
        with pytest.raises(SimulationError):
            ThroughputMeter(min_window_ms=-1.0)


class TestTimeSeries:
    def test_window_selection(self):
        ts = TimeSeries("lat")
        for t in range(10):
            ts.record(float(t), float(t * 2))
        window = ts.window(3.0, 6.0)
        assert [v for _, v in window] == [6.0, 8.0, 10.0]
        assert len(ts.values()) == 10

    def test_merged_interleaves_by_timestamp(self):
        a = TimeSeries("lat")
        a.record(1.0, 10.0)
        a.record(5.0, 50.0)
        b = TimeSeries("lat")
        b.record(3.0, 30.0)
        merged = a.merged(b)
        assert merged.points == [(1.0, 10.0), (3.0, 30.0), (5.0, 50.0)]
        # Inputs are untouched.
        assert len(a.points) == 2 and len(b.points) == 1


class TestCounterMerged:
    def test_merged_sums_counts(self):
        a = Counter()
        a.add("x", 2)
        a.add("y")
        b = Counter()
        b.add("x", 3)
        b.add("z", 5)
        merged = a.merged(b)
        assert merged.as_dict() == {"x": 5, "y": 1, "z": 5}
        # Inputs are untouched.
        assert a.get("x") == 2 and b.get("x") == 3
