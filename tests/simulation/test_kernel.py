"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.errors import DeadlockError, SimulationError
from repro.simulation import Simulator


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_timeout_advances_clock():
    sim = Simulator()

    def proc():
        yield sim.timeout(5.0)
        return "done"

    p = sim.process(proc())
    sim.run()
    assert sim.now == 5.0
    assert p.triggered
    assert p.value == "done"


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.timeout(-1.0)


def test_sequential_timeouts_accumulate():
    sim = Simulator()
    seen = []

    def proc():
        yield sim.timeout(1.0)
        seen.append(sim.now)
        yield sim.timeout(2.5)
        seen.append(sim.now)

    sim.process(proc())
    sim.run()
    assert seen == [1.0, 3.5]


def test_timeout_value_passed_to_process():
    sim = Simulator()
    received = []

    def proc():
        value = yield sim.timeout(1.0, value="payload")
        received.append(value)

    sim.process(proc())
    sim.run()
    assert received == ["payload"]


def test_processes_interleave_by_time():
    sim = Simulator()
    order = []

    def proc(name, delays):
        for d in delays:
            yield sim.timeout(d)
            order.append((name, sim.now))

    sim.process(proc("a", [2.0, 2.0]))   # fires at 2, 4
    sim.process(proc("b", [1.0, 2.0]))   # fires at 1, 3
    sim.run()
    assert order == [("b", 1.0), ("a", 2.0), ("b", 3.0), ("a", 4.0)]


def test_same_time_events_fire_in_schedule_order():
    sim = Simulator()
    order = []

    def proc(name):
        yield sim.timeout(1.0)
        order.append(name)

    for name in ["first", "second", "third"]:
        sim.process(proc(name))
    sim.run()
    assert order == ["first", "second", "third"]


def test_run_until_limits_clock():
    sim = Simulator()

    def proc():
        while True:
            yield sim.timeout(10.0)

    sim.process(proc())
    sim.run(until=25.0)
    assert sim.now == 25.0


def test_run_until_sets_clock_even_when_idle():
    sim = Simulator()
    sim.run(until=100.0)
    assert sim.now == 100.0


def test_process_waits_on_manual_event():
    sim = Simulator()
    gate = sim.event()
    log = []

    def waiter():
        value = yield gate
        log.append((sim.now, value))

    def opener():
        yield sim.timeout(7.0)
        gate.succeed("open")

    sim.process(waiter())
    sim.process(opener())
    sim.run()
    assert log == [(7.0, "open")]


def test_event_cannot_fire_twice():
    sim = Simulator()
    event = sim.event()
    event.succeed(1)
    with pytest.raises(SimulationError):
        event.succeed(2)


def test_event_value_before_trigger_raises():
    sim = Simulator()
    event = sim.event()
    with pytest.raises(SimulationError):
        _ = event.value


def test_process_waiting_on_already_fired_event():
    sim = Simulator()
    gate = sim.event()
    gate.succeed("early")
    got = []

    def proc():
        value = yield gate
        got.append(value)

    sim.process(proc())
    sim.run()
    assert got == ["early"]


def test_process_return_value_via_nested_wait():
    sim = Simulator()

    def child():
        yield sim.timeout(3.0)
        return 42

    def parent():
        result = yield sim.process(child())
        return result * 2

    p = sim.process(parent())
    sim.run()
    assert p.value == 84
    assert sim.now == 3.0


def test_run_until_complete_returns_value():
    sim = Simulator()

    def proc():
        yield sim.timeout(1.0)
        return "finished"

    p = sim.process(proc())
    assert sim.run_until_complete(p) == "finished"


def test_run_until_complete_detects_deadlock():
    sim = Simulator()
    gate = sim.event()  # nobody ever fires this

    def proc():
        yield gate

    p = sim.process(proc())
    with pytest.raises(DeadlockError):
        sim.run_until_complete(p)


def test_yielding_non_event_is_an_error():
    sim = Simulator()

    def proc():
        yield "not an event"

    sim.process(proc())
    with pytest.raises(SimulationError):
        sim.run()


def test_peek_reports_next_event_time():
    sim = Simulator()
    assert sim.peek() is None

    def proc():
        yield sim.timeout(9.0)

    sim.process(proc())
    assert sim.peek() == 0.0  # the process start event
    sim.run()
    assert sim.peek() is None


def test_many_processes_deterministic():
    def run_once():
        sim = Simulator()
        trace = []

        def proc(i):
            yield sim.timeout(float(i % 7))
            trace.append(i)
            yield sim.timeout(float(i % 3))
            trace.append(-i)

        for i in range(50):
            sim.process(proc(i))
        sim.run()
        return trace

    assert run_once() == run_once()


class TestInterrupt:
    def test_interrupt_during_timeout(self):
        from repro.simulation import Interrupt

        sim = Simulator()
        caught = []

        def victim():
            try:
                yield sim.timeout(100.0)
            except Interrupt as exc:
                caught.append((sim.now, exc.cause))

        proc = sim.process(victim())

        def killer():
            yield sim.timeout(3.0)
            proc.interrupt(cause="node-0")

        sim.process(killer())
        sim.run()
        assert caught == [(3.0, "node-0")]
        assert proc.triggered

    def test_unhandled_interrupt_kills_process(self):
        sim = Simulator()
        reached = []

        def victim():
            yield sim.timeout(100.0)
            reached.append(True)

        proc = sim.process(victim())

        def killer():
            yield sim.timeout(1.0)
            proc.interrupt()

        sim.process(killer())
        sim.run()
        assert proc.triggered
        assert proc.value is None
        assert reached == []
        # The detached timeout still fires, but nothing resumes.
        assert sim.now == 100.0

    def test_interrupt_of_finished_process_is_noop(self):
        sim = Simulator()

        def quick():
            yield sim.timeout(1.0)
            return "ok"

        proc = sim.process(quick())
        sim.run()
        assert proc.value == "ok"
        proc.interrupt()  # must not raise or re-trigger
        sim.run()
        assert proc.value == "ok"

    def test_double_interrupt_same_instant(self):
        sim = Simulator()

        def victim():
            yield sim.timeout(50.0)

        proc = sim.process(victim())

        def killer():
            yield sim.timeout(2.0)
            proc.interrupt(cause="first")
            proc.interrupt(cause="second")

        sim.process(killer())
        sim.run()
        assert proc.triggered and proc.value is None

    def test_interrupted_process_can_clean_up_and_return(self):
        from repro.simulation import Interrupt

        sim = Simulator()

        def victim():
            try:
                yield sim.timeout(100.0)
            except Interrupt:
                return "cleaned-up"
            return "finished"

        proc = sim.process(victim())

        def killer():
            yield sim.timeout(5.0)
            proc.interrupt()

        sim.process(killer())
        sim.run()
        assert proc.value == "cleaned-up"

    def test_interrupt_detaches_from_waited_process(self):
        # Interrupting a process that waits on another process must not
        # leave a dangling resume when the awaited process completes.
        from repro.simulation import Interrupt

        sim = Simulator()
        log = []

        def slow():
            yield sim.timeout(10.0)
            return "slow-done"

        slow_proc = sim.process(slow())

        def waiter():
            try:
                value = yield slow_proc
                log.append(("resumed", value))
            except Interrupt:
                log.append(("interrupted", sim.now))

        waiter_proc = sim.process(waiter())

        def killer():
            yield sim.timeout(4.0)
            waiter_proc.interrupt()

        sim.process(killer())
        sim.run()
        assert log == [("interrupted", 4.0)]
        assert slow_proc.value == "slow-done"
