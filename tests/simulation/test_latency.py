"""Unit tests for latency distributions."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.simulation import (
    ConstantLatency,
    EmpiricalLatency,
    LogNormalLatency,
    MixtureLatency,
    UniformLatency,
)


@pytest.fixture
def rng():
    return np.random.default_rng(42)


def test_constant(rng):
    model = ConstantLatency(3.5)
    assert model.sample(rng) == 3.5
    assert model.mean() == 3.5


def test_constant_rejects_negative():
    with pytest.raises(ConfigError):
        ConstantLatency(-1.0)


def test_lognormal_median_matches_parameter(rng):
    model = LogNormalLatency(median_ms=2.0, p99_ms=6.0)
    samples = [model.sample(rng) for _ in range(20_000)]
    assert np.median(samples) == pytest.approx(2.0, rel=0.05)


def test_lognormal_p99_matches_parameter(rng):
    model = LogNormalLatency(median_ms=2.0, p99_ms=6.0)
    samples = [model.sample(rng) for _ in range(50_000)]
    assert np.percentile(samples, 99) == pytest.approx(6.0, rel=0.08)


def test_lognormal_degenerate_when_p99_equals_median(rng):
    model = LogNormalLatency(1.18, 1.18)
    assert model.sample(rng) == 1.18
    assert model.sigma == 0.0


def test_lognormal_validation():
    with pytest.raises(ConfigError):
        LogNormalLatency(0.0, 1.0)
    with pytest.raises(ConfigError):
        LogNormalLatency(2.0, 1.0)  # p99 < median


def test_lognormal_percentile_analytic():
    model = LogNormalLatency(median_ms=2.0, p99_ms=6.0)
    assert model.percentile(0.5) == pytest.approx(2.0, rel=1e-9)
    assert model.percentile(0.99) == pytest.approx(6.0, rel=1e-6)
    with pytest.raises(ConfigError):
        model.percentile(1.5)


def test_scaled(rng):
    base = ConstantLatency(2.0)
    scaled = base.scaled(1.5)
    assert scaled.sample(rng) == 3.0
    assert scaled.mean() == 3.0


def test_scaled_rejects_negative_factor():
    with pytest.raises(ConfigError):
        ConstantLatency(1.0).scaled(-0.5)


def test_uniform(rng):
    model = UniformLatency(1.0, 3.0)
    samples = [model.sample(rng) for _ in range(5_000)]
    assert all(1.0 <= s <= 3.0 for s in samples)
    assert np.mean(samples) == pytest.approx(2.0, rel=0.05)
    assert model.mean() == 2.0


def test_uniform_validation():
    with pytest.raises(ConfigError):
        UniformLatency(3.0, 1.0)


def test_empirical_resamples_only_observed(rng):
    model = EmpiricalLatency([1.0, 2.0, 4.0])
    samples = {model.sample(rng) for _ in range(200)}
    assert samples <= {1.0, 2.0, 4.0}
    assert model.mean() == pytest.approx(7.0 / 3.0)


def test_empirical_requires_samples():
    with pytest.raises(ConfigError):
        EmpiricalLatency([])


def test_mixture_mean_and_bounds(rng):
    model = MixtureLatency(
        ConstantLatency(1.0), ConstantLatency(10.0),
        primary_probability=0.9,
    )
    assert model.mean() == pytest.approx(0.9 * 1.0 + 0.1 * 10.0)
    samples = [model.sample(rng) for _ in range(5_000)]
    fraction_primary = sum(1 for s in samples if s == 1.0) / len(samples)
    assert fraction_primary == pytest.approx(0.9, abs=0.02)


def test_mixture_validation():
    with pytest.raises(ConfigError):
        MixtureLatency(ConstantLatency(1), ConstantLatency(2), 1.5)
