"""Unit tests for deterministic RNG streams."""

from repro.simulation import RngRegistry, derive_seed


def test_same_name_returns_same_stream_object():
    reg = RngRegistry(7)
    assert reg.stream("a") is reg.stream("a")


def test_streams_are_deterministic_across_registries():
    a = RngRegistry(7).stream("x").random(5).tolist()
    b = RngRegistry(7).stream("x").random(5).tolist()
    assert a == b


def test_different_names_differ():
    reg = RngRegistry(7)
    a = reg.stream("a").random(5).tolist()
    b = reg.stream("b").random(5).tolist()
    assert a != b


def test_different_seeds_differ():
    a = RngRegistry(1).stream("x").random(5).tolist()
    b = RngRegistry(2).stream("x").random(5).tolist()
    assert a != b


def test_derive_seed_stable_and_64bit():
    s1 = derive_seed(123, "stream")
    s2 = derive_seed(123, "stream")
    assert s1 == s2
    assert 0 <= s1 < 2 ** 64


def test_fork_is_deterministic_and_independent():
    root = RngRegistry(99)
    f1 = root.fork("trial-1").stream("x").random(3).tolist()
    f1_again = RngRegistry(99).fork("trial-1").stream("x").random(3).tolist()
    f2 = RngRegistry(99).fork("trial-2").stream("x").random(3).tolist()
    assert f1 == f1_again
    assert f1 != f2


def test_creation_order_does_not_matter():
    reg1 = RngRegistry(5)
    reg1.stream("a")
    first = reg1.stream("b").random(3).tolist()

    reg2 = RngRegistry(5)
    second = reg2.stream("b").random(3).tolist()  # no "a" created first
    assert first == second
