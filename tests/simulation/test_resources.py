"""Unit tests for FIFO resources."""

import pytest

from repro.errors import SimulationError
from repro.simulation import Resource, Simulator


def test_capacity_must_be_positive():
    sim = Simulator()
    with pytest.raises(SimulationError):
        Resource(sim, 0)


def test_grants_up_to_capacity_immediately():
    sim = Simulator()
    res = Resource(sim, 2)
    e1, e2, e3 = res.request(), res.request(), res.request()
    assert e1.triggered and e2.triggered
    assert not e3.triggered
    assert res.in_use == 2
    assert res.queued == 1


def test_release_grants_next_waiter_fifo():
    sim = Simulator()
    res = Resource(sim, 1)
    first = res.request()
    second = res.request()
    third = res.request()
    assert first.triggered and not second.triggered
    res.release()
    assert second.triggered and not third.triggered
    res.release()
    assert third.triggered


def test_release_of_idle_resource_raises():
    sim = Simulator()
    res = Resource(sim, 1)
    with pytest.raises(SimulationError):
        res.release()


def test_use_helper_serialises_work():
    sim = Simulator()
    res = Resource(sim, 1)
    finish_times = []

    def worker():
        yield from res.use(10.0)
        finish_times.append(sim.now)

    for _ in range(3):
        sim.process(worker())
    sim.run()
    assert finish_times == [10.0, 20.0, 30.0]


def test_parallel_capacity_two():
    sim = Simulator()
    res = Resource(sim, 2)
    finish_times = []

    def worker():
        yield from res.use(10.0)
        finish_times.append(sim.now)

    for _ in range(4):
        sim.process(worker())
    sim.run()
    assert finish_times == [10.0, 10.0, 20.0, 20.0]


def test_peak_and_grant_counters():
    sim = Simulator()
    res = Resource(sim, 3)

    def worker():
        yield from res.use(5.0)

    for _ in range(5):
        sim.process(worker())
    sim.run()
    assert res.peak_in_use == 3
    assert res.grants == 5
    assert res.in_use == 0


class TestNodeWorkerPool:
    def _pool(self, nodes=2, per_node=2):
        from repro.simulation import NodeWorkerPool, Simulator

        sim = Simulator()
        return sim, NodeWorkerPool(sim, nodes, per_node)

    def test_dimensions_must_be_positive(self):
        from repro.simulation import NodeWorkerPool, Simulator

        sim = Simulator()
        with pytest.raises(SimulationError):
            NodeWorkerPool(sim, 0, 4)
        with pytest.raises(SimulationError):
            NodeWorkerPool(sim, 4, 0)

    def test_round_robin_grant_assignment(self):
        sim, pool = self._pool(nodes=2, per_node=2)
        grants = [pool.request().value for _ in range(4)]
        assert [g.node_id for g in grants] == [0, 1, 0, 1]
        assert pool.in_use == 4
        assert pool.request().triggered is False
        assert pool.queued == 1

    def test_release_grants_next_waiter_fifo(self):
        sim, pool = self._pool(nodes=1, per_node=1)
        first = pool.request()
        second = pool.request()
        third = pool.request()
        assert first.triggered and not second.triggered
        pool.release(first.value)
        assert second.triggered and not third.triggered
        pool.release(second.value)
        assert third.triggered

    def test_crash_wipes_slots_and_ignores_stale_release(self):
        sim, pool = self._pool(nodes=2, per_node=2)
        grants = [pool.request().value for _ in range(4)]
        pool.crash(0)
        assert not pool.is_alive(0)
        assert pool.alive_nodes() == [1]
        assert pool.in_use == 2  # only node 1's slots still count
        # Releases of pre-crash grants on the dead node are no-ops.
        for grant in grants:
            if grant.node_id == 0:
                pool.release(grant)
        assert pool.in_use == 2

    def test_waiters_only_get_surviving_nodes_after_crash(self):
        sim, pool = self._pool(nodes=2, per_node=1)
        g0 = pool.request().value
        g1 = pool.request().value
        waiting = pool.request()
        pool.crash(0)
        assert not waiting.triggered  # dead node's capacity is gone
        pool.release(g1)
        assert waiting.triggered
        assert waiting.value.node_id == 1
        assert g0.node_id == 0  # sanity: the dead node held the other

    def test_restart_drains_queue_with_fresh_epoch(self):
        sim, pool = self._pool(nodes=1, per_node=1)
        before = pool.request().value
        waiting = pool.request()
        pool.crash(0)
        assert not waiting.triggered
        pool.restart(0)
        assert waiting.triggered
        after = waiting.value
        assert after.epoch == before.epoch + 2  # crash + restart
        # The pre-crash grant's release must not free the new slot.
        pool.release(before)
        assert pool.node_in_use(0) == 1
        pool.release(after)
        assert pool.node_in_use(0) == 0

    def test_crash_and_restart_are_idempotent(self):
        sim, pool = self._pool(nodes=2, per_node=1)
        pool.crash(0)
        epoch_after_crash = pool.request().value  # lands on node 1
        pool.crash(0)  # second crash: no-op
        pool.restart(0)
        pool.restart(0)  # second restart: no-op
        assert pool.is_alive(0)
        assert epoch_after_crash.node_id == 1

    def test_equivalent_to_pooled_resource_when_all_alive(self):
        # Grant-for-grant identical admission to a pooled Resource of
        # the same total capacity: the k-th request is granted
        # immediately iff fewer than capacity slots are in use.
        from repro.simulation import NodeWorkerPool, Simulator

        sim = Simulator()
        pool = NodeWorkerPool(sim, 3, 2)
        res = Resource(sim, 6)
        pool_events = [pool.request() for _ in range(9)]
        res_events = [res.request() for _ in range(9)]
        assert ([e.triggered for e in pool_events]
                == [e.triggered for e in res_events])
        for event in pool_events[:6]:
            pool.release(event.value)
        for _ in range(6):
            res.release()
        assert ([e.triggered for e in pool_events]
                == [e.triggered for e in res_events])
