"""Unit tests for FIFO resources."""

import pytest

from repro.errors import SimulationError
from repro.simulation import Resource, Simulator


def test_capacity_must_be_positive():
    sim = Simulator()
    with pytest.raises(SimulationError):
        Resource(sim, 0)


def test_grants_up_to_capacity_immediately():
    sim = Simulator()
    res = Resource(sim, 2)
    e1, e2, e3 = res.request(), res.request(), res.request()
    assert e1.triggered and e2.triggered
    assert not e3.triggered
    assert res.in_use == 2
    assert res.queued == 1


def test_release_grants_next_waiter_fifo():
    sim = Simulator()
    res = Resource(sim, 1)
    first = res.request()
    second = res.request()
    third = res.request()
    assert first.triggered and not second.triggered
    res.release()
    assert second.triggered and not third.triggered
    res.release()
    assert third.triggered


def test_release_of_idle_resource_raises():
    sim = Simulator()
    res = Resource(sim, 1)
    with pytest.raises(SimulationError):
        res.release()


def test_use_helper_serialises_work():
    sim = Simulator()
    res = Resource(sim, 1)
    finish_times = []

    def worker():
        yield from res.use(10.0)
        finish_times.append(sim.now)

    for _ in range(3):
        sim.process(worker())
    sim.run()
    assert finish_times == [10.0, 20.0, 30.0]


def test_parallel_capacity_two():
    sim = Simulator()
    res = Resource(sim, 2)
    finish_times = []

    def worker():
        yield from res.use(10.0)
        finish_times.append(sim.now)

    for _ in range(4):
        sim.process(worker())
    sim.run()
    assert finish_times == [10.0, 10.0, 20.0, 20.0]


def test_peak_and_grant_counters():
    sim = Simulator()
    res = Resource(sim, 3)

    def worker():
        yield from res.use(5.0)

    for _ in range(5):
        sim.process(worker())
    sim.run()
    assert res.peak_in_use == 3
    assert res.grants == 5
    assert res.in_use == 0
