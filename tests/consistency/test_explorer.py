"""Bounded model checking of the protocols (the tech report's TLA+
verification, run against the real implementation)."""

import pytest

from repro.consistency import ProtocolExplorer, all_interleavings


class TestInterleavingEnumeration:
    def test_counts_match_multinomial(self):
        # 2 programs of lengths 2 and 2: C(4,2) = 6 interleavings.
        assert len(list(all_interleavings([2, 2]))) == 6
        # Lengths 3 and 2: C(5,2) = 10.
        assert len(list(all_interleavings([3, 2]))) == 10
        # Three programs of length 1: 3! = 6.
        assert len(list(all_interleavings([1, 1, 1]))) == 6

    def test_program_order_preserved(self):
        for schedule in all_interleavings([3, 2]):
            assert [s for s in schedule if s == 0] == [0, 0, 0]
            assert [s for s in schedule if s == 1] == [1, 1]


CONTENDED = dict(
    programs=[
        [("r", "x"), ("w", "x"), ("r", "y")],
        [("w", "x"), ("w", "y")],
    ],
    initial_values={"x": 0, "y": 0},
)

WRITE_HEAVY = dict(
    programs=[
        [("w", "x"), ("w", "y"), ("w", "x")],
        [("r", "x"), ("w", "y")],
    ],
    initial_values={"x": 0, "y": 0},
)

THREE_WAY = dict(
    programs=[
        [("r", "x"), ("w", "y")],
        [("w", "x")],
        [("r", "y"), ("r", "x")],
    ],
    initial_values={"x": 0, "y": 0},
)


@pytest.mark.parametrize("protocol", ["halfmoon-read", "halfmoon-write"])
@pytest.mark.parametrize(
    "scenario", [CONTENDED, WRITE_HEAVY, THREE_WAY],
    ids=["contended", "write-heavy", "three-way"],
)
def test_exhaustive_exploration_finds_no_violations(protocol, scenario):
    explorer = ProtocolExplorer(protocol, seed=5, **scenario)
    result = explorer.explore(with_crashes=True)
    assert result.schedules_explored > 0
    assert result.crash_variants_explored > 0
    assert result.ok, result.violations[:3]


def test_boki_crash_replay_reads_stable():
    """Boki has no derived order to validate, but crash/replay read
    stability is still checked exhaustively."""
    explorer = ProtocolExplorer("boki", seed=5, **CONTENDED)
    result = explorer.explore(with_crashes=True)
    assert result.ok, result.violations[:3]


def test_unsafe_protocol_fails_crash_replay():
    """The checker has teeth: the unsafe baseline violates read stability
    under at least one crash/interleaving combination."""
    explorer = ProtocolExplorer(
        "unsafe",
        programs=[
            [("r", "x"), ("r", "x")],
            [("w", "x")],
        ],
        initial_values={"x": 0},
        seed=5,
    )
    result = explorer.explore(with_crashes=True)
    assert not result.ok
    assert any(v.crash is not None for v in result.violations)


def test_result_summary_format():
    explorer = ProtocolExplorer(
        "halfmoon-read",
        programs=[[("r", "x")], [("w", "x")]],
        initial_values={"x": 0},
    )
    result = explorer.explore(with_crashes=False)
    assert "2 schedules" in result.summary()
    assert "0 violations" in result.summary()
