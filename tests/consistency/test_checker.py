"""Unit tests for the sequential-consistency checker."""

import pytest

from repro.consistency import (
    History,
    find_sequential_witness,
    is_legal_order,
    validate_total_order,
)
from repro.errors import ConsistencyViolation


def simple_history():
    hist = History(initial_values={"x": 0})
    w = hist.write("p1", "x", 1)
    r = hist.read("p2", "x", 1)
    return hist, w, r


def test_valid_order_accepted():
    hist, w, r = simple_history()
    validate_total_order(hist, [w, r])  # no exception


def test_read_before_its_write_rejected():
    hist, w, r = simple_history()
    with pytest.raises(ConsistencyViolation):
        validate_total_order(hist, [r, w])


def test_read_of_initial_value():
    hist = History(initial_values={"x": 0})
    r = hist.read("p", "x", 0)
    validate_total_order(hist, [r])


def test_order_must_be_permutation():
    hist, w, r = simple_history()
    with pytest.raises(ConsistencyViolation):
        validate_total_order(hist, [w])


def test_program_order_enforced():
    hist = History(initial_values={"x": 0, "y": 0})
    a = hist.write("p", "x", 1)
    b = hist.write("p", "y", 1)
    ok = hist.read("q", "x", 1)
    with pytest.raises(ConsistencyViolation):
        validate_total_order(hist, [b, a, ok])


def test_allow_reorder_exemption():
    hist = History(initial_values={"x": 0, "y": 0})
    a = hist.write("p", "x", 1)
    b = hist.write("p", "y", 1)
    validate_total_order(
        hist, [b, a],
        allow_reorder=lambda e1, e2: e1.key != e2.key,
    )


def test_rejected_write_is_invisible():
    hist = History(initial_values={"x": 0})
    w1 = hist.write("p1", "x", 5)
    w2 = hist.write("p2", "x", 9, applied=False)
    r = hist.read("p3", "x", 5)
    validate_total_order(hist, [w1, w2, r])


def test_is_legal_order_boolean():
    hist, w, r = simple_history()
    assert is_legal_order(hist, [w, r])
    assert not is_legal_order(hist, [r, w])


class TestWitnessSearch:
    def test_finds_interleaving(self):
        hist = History(initial_values={"x": 0})
        hist.write("p1", "x", 1)
        hist.read("p2", "x", 1)
        witness = find_sequential_witness(hist)
        assert witness is not None
        validate_total_order(hist, witness)

    def test_classic_sc_but_not_linearizable(self):
        """r1 reads the old value after w committed in real time — fine
        under SC (the read serialises before the write)."""
        hist = History(initial_values={"x": 0})
        hist.write("p1", "x", 1)
        hist.read("p2", "x", 0)   # stale but SC-legal
        assert find_sequential_witness(hist) is not None

    def test_detects_non_sc_history(self):
        """Two processes observe two writes in opposite orders — no SC
        serialization exists."""
        hist = History(initial_values={"x": 0, "y": 0})
        hist.write("w1", "x", 1)
        hist.write("w2", "y", 1)
        # p1 sees x=1 then y=0  => x-write before y-write
        hist.read("p1", "x", 1)
        hist.read("p1", "y", 0)
        # p2 sees y=1 then x=0  => y-write before x-write
        hist.read("p2", "y", 1)
        hist.read("p2", "x", 0)
        assert find_sequential_witness(hist) is None

    def test_cap_enforced(self):
        hist = History()
        for i in range(10):
            hist.read("p", "x", None)
        with pytest.raises(ConsistencyViolation):
            find_sequential_witness(hist, max_events=9)

    def test_none_value_semantics(self):
        """Reads of never-written keys observe None; the search must
        distinguish 'absent' from 'None written'."""
        hist = History()
        hist.read("p", "x", None)
        w = hist.write("q", "x", None)
        witness = find_sequential_witness(hist)
        assert witness is not None
