"""Unit tests for histories and events."""

from repro.consistency import History, READ, WRITE


def test_real_time_counter_increments():
    hist = History()
    e1 = hist.read("p1", "x", 1)
    e2 = hist.write("p2", "x", 2)
    assert e1.real_time < e2.real_time


def test_program_order_filters_by_process():
    hist = History()
    hist.read("a", "x", 1)
    hist.write("b", "x", 2)
    hist.read("a", "y", 3)
    program = hist.program_order("a")
    assert [e.key for e in program] == ["x", "y"]


def test_processes_in_first_seen_order():
    hist = History()
    hist.read("b", "x", 1)
    hist.read("a", "x", 1)
    hist.read("b", "y", 1)
    assert hist.processes() == ["b", "a"]


def test_keys_in_first_seen_order():
    hist = History()
    hist.read("p", "y", 1)
    hist.write("p", "x", 1)
    hist.read("p", "y", 2)
    assert hist.keys() == ["y", "x"]


def test_by_real_time_sorted():
    hist = History()
    events = [hist.read("p", "x", i) for i in range(5)]
    assert hist.by_real_time() == events


def test_brief_marks_rejected_writes():
    hist = History()
    e = hist.write("p", "x", 1, applied=False)
    assert e.brief().endswith("!")


def test_len_counts_events():
    hist = History()
    hist.read("p", "x", 1)
    hist.write("p", "x", 2)
    assert len(hist) == 2
