"""Unit tests for TracedSession recording."""

import pytest

from repro.consistency import History, TracedSession
from tests.conftest import make_runtime


def test_records_reads_with_cursor_timestamp():
    runtime = make_runtime("halfmoon-read")
    runtime.populate("x", 7)
    history = History(initial_values={"x": 7})
    session = TracedSession(runtime.open_session(), history, "P").init()
    cursor = session.env.cursor_ts
    assert session.read("x") == 7
    event = history.events[-1]
    assert event.kind == "read"
    assert event.logical_ts == cursor
    assert event.value == 7
    session.finish()


def test_records_write_commit_seqnum_under_halfmoon_read():
    runtime = make_runtime("halfmoon-read")
    runtime.populate("x", 0)
    history = History(initial_values={"x": 0})
    session = TracedSession(runtime.open_session(), history, "P").init()
    session.write("x", 1)
    event = history.events[-1]
    assert event.kind == "write"
    assert event.applied is True
    assert event.logical_ts == session.env.cursor_ts
    session.finish()


def test_records_version_tuple_and_outcome_under_halfmoon_write():
    runtime = make_runtime("halfmoon-write")
    runtime.populate("x", 0)
    history = History(initial_values={"x": 0})
    stale = TracedSession(runtime.open_session(), history, "S").init()
    fresh = TracedSession(runtime.open_session(), history, "F").init()
    fresh.read("x")
    fresh.write("x", "fresh")
    stale.write("x", "stale")
    applied = [e for e in history.events if e.kind == "write"]
    assert applied[0].applied is True
    assert applied[1].applied is False
    assert applied[0].logical_ts > applied[1].logical_ts
    stale.finish()
    fresh.finish()


def test_process_defaults_to_instance_id():
    runtime = make_runtime("boki")
    history = History()
    session = TracedSession(runtime.open_session(), history)
    assert session.process == session.env.instance_id
    session.session.finish()


def test_sync_passthrough():
    runtime = make_runtime("halfmoon-read")
    runtime.populate("x", 0)
    history = History(initial_values={"x": 0})
    session = TracedSession(runtime.open_session(), history, "P").init()
    before = session.env.cursor_ts
    other = runtime.open_session().init()
    other.write("x", 1)
    other.finish()
    session.sync()
    assert session.env.cursor_ts > before
    session.finish()
