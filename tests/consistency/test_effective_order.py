"""Unit tests for the effective-order derivations (Props. 4.7 / 4.8)."""

import pytest

from repro.consistency import (
    History,
    commutable_log_free_writes,
    halfmoon_read_order,
    halfmoon_write_order,
    validate_total_order,
)
from repro.errors import ConsistencyViolation


class TestHalfmoonReadOrder:
    def test_orders_by_logical_timestamp(self):
        hist = History(initial_values={"x": 0})
        late = hist.read("p2", "x", 0, logical_ts=5)   # issued first...
        early = hist.write("p1", "x", 1, logical_ts=3)  # ...but commits at 3
        order = halfmoon_read_order(hist)
        assert order == [early, late]

    def test_write_before_read_at_same_timestamp(self):
        hist = History(initial_values={"x": 0})
        r = hist.read("p1", "x", 1, logical_ts=7)
        w = hist.write("p1", "x", 1, logical_ts=7)
        order = halfmoon_read_order(hist)
        assert order == [w, r]

    def test_figure4_scenario_is_sequentially_consistent(self):
        """The Figure 4 interleaving ordered by logical timestamps."""
        hist = History(initial_values={"X": "x0", "Y": "y0"})
        hist.read("F1", "X", "x0", logical_ts=0)          # cursor t0
        hist.write("F2", "X", "xf2", logical_ts=1)        # t1
        hist.write("F2", "Y", "yf2", logical_ts=2)        # t2
        hist.write("F1", "X", "x0*2", logical_ts=3)       # t3
        hist.read("F1", "Y", "yf2", logical_ts=3)         # cursor t3
        order = halfmoon_read_order(hist)
        validate_total_order(hist, order)

    def test_missing_timestamp_rejected(self):
        hist = History()
        hist.read("p", "x", 0)  # no logical_ts
        with pytest.raises(ConsistencyViolation):
            halfmoon_read_order(hist)


class TestHalfmoonWriteOrder:
    def test_successful_writes_keep_real_time_positions(self):
        hist = History(initial_values={"x": 0})
        w1 = hist.write("p1", "x", 1, logical_ts=(1, 1))
        r = hist.read("p2", "x", 1)
        w2 = hist.write("p2", "x", 2, logical_ts=(2, 1))
        assert halfmoon_write_order(hist) == [w1, r, w2]

    def test_rejected_write_moves_before_its_blocker(self):
        """Figure 6: F1's stale Write(X) is placed immediately before
        F2's fresher Write(X)."""
        hist = History(initial_values={"x": 0})
        fresh = hist.write("F2", "x", "f2", logical_ts=(5, 1))
        stale = hist.write("F1", "x", "f1", logical_ts=(2, 1),
                           applied=False)
        order = halfmoon_write_order(hist)
        assert order == [stale, fresh]
        validate_total_order(
            hist, order, allow_reorder=commutable_log_free_writes
        )

    def test_duplicate_replay_write_dropped(self):
        hist = History(initial_values={"x": 0})
        original = hist.write("p", "x", 1, logical_ts=(3, 1))
        replay = hist.write("p", "x", 1, logical_ts=(3, 1), applied=False)
        order = halfmoon_write_order(hist)
        assert order == [original]

    def test_impossible_rejection_detected(self):
        """A write rejected with no higher-version successful write is a
        corruption signal."""
        hist = History(initial_values={"x": 0})
        hist.write("p", "x", 1, logical_ts=(9, 9), applied=False)
        with pytest.raises(ConsistencyViolation):
            halfmoon_write_order(hist)

    def test_figure8_commuting_writes(self):
        """Figure 8(a): F1's W(X) is reordered past its own later W(Y) —
        allowed because consecutive log-free writes to different objects
        commute; rejected when program order is enforced strictly."""
        hist = History(initial_values={"X": 0, "Y": 0})
        wx_f1 = hist.write("F1", "X", "f1x", logical_ts=(0, 1))
        wy_f1 = hist.write("F1", "Y", "f1y", logical_ts=(0, 2))
        ry_f2 = hist.read("F2", "Y", "f1y")
        wx_f2 = hist.write("F2", "X", "f2x", logical_ts=(2, 1))
        # Redo with F1's W(X) arriving *after* F2's (stale, rejected):
        hist2 = History(initial_values={"X": 0, "Y": 0})
        a = hist2.write("F2", "X", "f2x", logical_ts=(2, 1))
        b = hist2.read("F2", "Y", 0)
        c = hist2.write("F1", "X", "f1x", logical_ts=(0, 1), applied=False)
        d = hist2.write("F1", "Y", "f1y", logical_ts=(0, 2))
        order = halfmoon_write_order(hist2)
        # F1's W(X) hides before F2's W(X), which precedes F1's W(Y):
        # F1's program order W(X) < W(Y) survives here, but F2's read of Y
        # shows the general commuting need; the order must validate under
        # the relaxed rule either way.
        validate_total_order(
            hist2, order, allow_reorder=commutable_log_free_writes
        )
        assert order.index(c) < order.index(a)


class TestLiveDerivation:
    """Derive orders from real protocol runs via TracedSession."""

    def test_halfmoon_read_random_interleavings(self):
        import numpy as np
        from repro.consistency import TracedSession
        from tests.conftest import make_runtime

        rng = np.random.default_rng(5)
        for trial in range(20):
            runtime = make_runtime("halfmoon-read", seed=trial)
            runtime.populate("x", 0)
            runtime.populate("y", 0)
            hist = History(initial_values={"x": 0, "y": 0})
            sessions = [
                TracedSession(runtime.open_session(), hist, f"P{i}").init()
                for i in range(3)
            ]
            for step in range(6):
                session = sessions[int(rng.integers(3))]
                key = "x" if rng.random() < 0.5 else "y"
                if rng.random() < 0.5:
                    session.read(key)
                else:
                    session.write(key, f"{trial}.{step}")
            order = halfmoon_read_order(hist)
            validate_total_order(hist, order)

    def test_halfmoon_write_random_interleavings(self):
        import numpy as np
        from repro.consistency import TracedSession
        from tests.conftest import make_runtime

        rng = np.random.default_rng(6)
        for trial in range(20):
            runtime = make_runtime("halfmoon-write", seed=trial)
            runtime.populate("x", 0)
            runtime.populate("y", 0)
            hist = History(initial_values={"x": 0, "y": 0})
            sessions = [
                TracedSession(runtime.open_session(), hist, f"P{i}").init()
                for i in range(3)
            ]
            for step in range(6):
                session = sessions[int(rng.integers(3))]
                key = "x" if rng.random() < 0.5 else "y"
                if rng.random() < 0.5:
                    session.read(key)
                else:
                    session.write(key, f"{trial}.{step}")
            order = halfmoon_write_order(hist)
            validate_total_order(
                hist, order, allow_reorder=commutable_log_free_writes
            )
