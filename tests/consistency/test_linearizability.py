"""Linearizability vs sequential consistency (Section 4.4).

Halfmoon trades linearizability for log-free operation: Halfmoon-read's
snapshot reads are sequentially consistent but can be stale in real
time.  These tests pin down exactly where the relaxation shows — and
that an explicit ``sync`` restores real-time semantics, as the paper
offers.
"""

from repro.consistency import (
    History,
    TracedSession,
    halfmoon_read_order,
    is_linearizable,
    validate_linearizable,
    validate_total_order,
)
from tests.conftest import make_runtime


def stale_read_history(use_sync):
    runtime = make_runtime("halfmoon-read")
    runtime.populate("x", "old")
    history = History(initial_values={"x": "old"})
    reader = TracedSession(runtime.open_session(), history, "R").init()
    writer = TracedSession(runtime.open_session(), history, "W").init()
    writer.write("x", "new")
    writer.finish()
    if use_sync:
        reader.sync()
    reader.read("x")
    reader.finish()
    return history


def test_halfmoon_read_is_sc_but_not_linearizable():
    history = stale_read_history(use_sync=False)
    # The stale read violates real-time order...
    assert not is_linearizable(history)
    # ...yet the logical-timestamp order is a legal SC serialization.
    validate_total_order(history, halfmoon_read_order(history))


def test_sync_restores_linearizability():
    history = stale_read_history(use_sync=True)
    validate_linearizable(history)
    # The read observed the fresh value.
    reads = [e for e in history.events if e.kind == "read"]
    assert reads[-1].value == "new"


def test_halfmoon_write_reads_are_realtime():
    """Under Halfmoon-write, reads always see the latest state; read-only
    interleavings are linearizable (the relaxation affects only the
    commuting of log-free writes)."""
    runtime = make_runtime("halfmoon-write")
    runtime.populate("x", 0)
    history = History(initial_values={"x": 0})
    a = TracedSession(runtime.open_session(), history, "A").init()
    b = TracedSession(runtime.open_session(), history, "B").init()
    b.read("x")
    b.write("x", 1)
    a.read("x")
    a.finish()
    b.finish()
    assert is_linearizable(history)


def test_boki_reads_are_realtime():
    runtime = make_runtime("boki")
    runtime.populate("x", 0)
    history = History(initial_values={"x": 0})
    a = TracedSession(runtime.open_session(), history, "A").init()
    b = TracedSession(runtime.open_session(), history, "B").init()
    b.write("x", 1)
    a.read("x")
    a.finish()
    b.finish()
    assert is_linearizable(history)


def test_real_time_boundary_property(protocol_name):
    """Section 4.4: an SSF that starts after an operation finishes sees
    its effects — enforced by the init record's fresh cursor."""
    runtime = make_runtime(protocol_name)
    runtime.populate("x", "old")
    first = runtime.open_session().init()
    first.write("x", "new")
    first.finish()
    late = runtime.open_session().init()  # starts after the write ends
    assert late.read("x") == "new"
    late.finish()
