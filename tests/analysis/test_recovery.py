"""Unit tests for the Section 7 recovery-cost model."""

import pytest

from repro.analysis import (
    break_even_failure_rate,
    expected_cost_halfmoon,
    expected_cost_symmetric,
    expected_rounds,
    halfmoon_wins,
)
from repro.errors import ConfigError


def test_expected_rounds_geometric():
    assert expected_rounds(0.0) == 1.0
    assert expected_rounds(0.5) == 2.0
    assert expected_rounds(0.9) == pytest.approx(10.0)


def test_expected_rounds_validation():
    with pytest.raises(ConfigError):
        expected_rounds(1.0)
    with pytest.raises(ConfigError):
        expected_rounds(-0.1)


def test_halfmoon_cost_scales_with_rounds():
    # cost = (1 - x) / (1 - f)
    assert expected_cost_halfmoon(0.0, 0.3) == pytest.approx(0.7)
    assert expected_cost_halfmoon(0.5, 0.3) == pytest.approx(1.4)


def test_symmetric_cost_with_free_replay():
    assert expected_cost_symmetric(0.0) == 1.0
    assert expected_cost_symmetric(0.9) == 1.0  # replay free


def test_symmetric_cost_with_partial_replay():
    # one extra round at f=0.5, each costing 0.4 of a run
    assert expected_cost_symmetric(0.5, 0.4) == pytest.approx(1.4)


def test_break_even_equals_advantage_with_free_replay():
    assert break_even_failure_rate(0.3) == pytest.approx(0.3)


def test_break_even_higher_with_costly_replay():
    assert break_even_failure_rate(0.3, replay_discount=0.25) == (
        pytest.approx(0.4)
    )


def test_break_even_solves_equality():
    x, d = 0.3, 0.25
    f = break_even_failure_rate(x, d)
    assert expected_cost_halfmoon(f, x) == pytest.approx(
        expected_cost_symmetric(f, d), rel=1e-9
    )


def test_halfmoon_wins_below_break_even():
    """The paper's claim: with a ~30% failure-free advantage, Halfmoon
    outperforms symmetric logging for every realistic failure rate."""
    for f in (0.0, 0.05, 0.1, 0.2, 0.29):
        assert halfmoon_wins(f, advantage_x=0.3)
    assert not halfmoon_wins(0.35, advantage_x=0.3)


def test_technical_report_claim_f40_with_costly_replay():
    """The extended version validates a win even at f = 0.4 once the
    symmetric protocol's replay is not free."""
    assert halfmoon_wins(0.40, advantage_x=0.3, replay_discount=0.3)
