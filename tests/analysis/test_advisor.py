"""Unit tests for the protocol advisor."""

import pytest

from repro.analysis import (
    HALFMOON_READ,
    HALFMOON_WRITE,
    ProtocolAdvisor,
    WorkloadObserver,
    WorkloadProfile,
)
from repro.errors import ConfigError


def profile(p_read, rate=100.0):
    return WorkloadProfile(p_read, 1.0 - p_read, rate)


def test_read_intensive_gets_halfmoon_read():
    advisor = ProtocolAdvisor()
    rec = advisor.recommend(profile(0.9))
    assert rec.protocol == HALFMOON_READ


def test_write_intensive_gets_halfmoon_write():
    advisor = ProtocolAdvisor()
    rec = advisor.recommend(profile(0.2))
    assert rec.protocol == HALFMOON_WRITE


def test_boundary_matches_cost_ratio():
    advisor = ProtocolAdvisor(cost_ratio_w_over_r=2.0)
    # Just above 2/3: HM-read; just below: HM-write.
    assert advisor.recommend(profile(0.70)).protocol == HALFMOON_READ
    assert advisor.recommend(profile(0.60)).protocol == HALFMOON_WRITE
    rec = advisor.recommend(profile(0.5))
    assert rec.runtime_boundary == pytest.approx(2.0 / 3.0)
    assert rec.storage_boundary == 0.5


def test_storage_only_weighting_moves_boundary_to_half():
    advisor = ProtocolAdvisor(runtime_weight=0.0)
    assert advisor.recommend(profile(0.55)).protocol == HALFMOON_READ
    assert advisor.recommend(profile(0.45)).protocol == HALFMOON_WRITE


def test_recommendation_explains_itself():
    rec = ProtocolAdvisor().recommend(profile(0.8))
    text = rec.explain()
    assert "0.80" in text
    assert rec.protocol in text


def test_invalid_weight_rejected():
    with pytest.raises(ConfigError):
        ProtocolAdvisor(runtime_weight=1.5)


class TestWorkloadObserver:
    def test_builds_profiles_from_counts(self):
        obs = WorkloadObserver()
        for _ in range(10):
            obs.note_invocation()
        for _ in range(8):
            obs.note_read("k")
        for _ in range(2):
            obs.note_write("k")
        p = obs.profile_for("k", arrival_rate_per_s=50.0)
        assert p.p_read == pytest.approx(0.8)
        assert p.p_write == pytest.approx(0.2)
        assert p.arrival_rate_per_s == 50.0

    def test_probabilities_capped_at_one(self):
        obs = WorkloadObserver()
        obs.note_invocation()
        obs.note_read("k")
        obs.note_read("k")
        assert obs.profile_for("k", 1.0).p_read == 1.0

    def test_empty_observer_rejects(self):
        with pytest.raises(ConfigError):
            WorkloadObserver().profile_for("k", 1.0)

    def test_aggregate_read_ratio(self):
        obs = WorkloadObserver()
        obs.note_invocation()
        obs.note_read("a")
        obs.note_read("b")
        obs.note_write("a")
        assert obs.aggregate_read_ratio() == pytest.approx(2.0 / 3.0)
        assert obs.keys() == ("a", "b")

    def test_end_to_end_with_advisor(self):
        obs = WorkloadObserver()
        for _ in range(100):
            obs.note_invocation()
            obs.note_read("hot")
        for _ in range(10):
            obs.note_write("hot")
        rec = ProtocolAdvisor().recommend(
            obs.profile_for("hot", arrival_rate_per_s=200.0)
        )
        assert rec.protocol == HALFMOON_READ
