"""Unit tests for the Section 4.6 analytical model (Equations 1-4)."""

import pytest

from repro.analysis import (
    WorkloadProfile,
    read_log_population,
    runtime_boundary_read_ratio,
    runtime_extra_cost_halfmoon_read,
    runtime_extra_cost_halfmoon_write,
    storage_boundary_read_ratio,
    storage_halfmoon_read,
    storage_halfmoon_write,
    write_log_population,
)
from repro.errors import ConfigError


def profile(p_read=0.5, p_write=0.5, rate=100.0, lifetime=0.05,
            gc_delay=5.0):
    return WorkloadProfile(p_read, p_write, rate, lifetime, gc_delay)


def test_littles_law_read_population():
    # N_r = p_r * lambda * (t + T_gc) = 0.5 * 100 * 5.05
    assert read_log_population(profile()) == pytest.approx(252.5)


def test_write_population_includes_interwrite_gap():
    # T_w = 1/(p_w * lambda) = 0.02 s; N_w = 50 * (0.02 + 5.05) = 253.5
    assert write_log_population(profile()) == pytest.approx(253.5)


def test_write_population_zero_when_no_writes():
    assert write_log_population(profile(p_write=0.0)) == 0.0


def test_storage_halfmoon_write_eq2():
    # S = S_val + N_r (S_meta + S_val)
    expected = 256 + 252.5 * (48 + 256)
    assert storage_halfmoon_write(profile(), 48, 256) == pytest.approx(
        expected
    )


def test_storage_halfmoon_read_eq4():
    # S = N_w (2 S_meta + S_val)
    expected = 253.5 * (2 * 48 + 256)
    assert storage_halfmoon_read(profile(), 48, 256) == pytest.approx(
        expected
    )


def test_storage_halfmoon_read_single_log_variant():
    expected = 253.5 * (48 + 256)
    assert storage_halfmoon_read(
        profile(), 48, 256, logs_per_write=1
    ) == pytest.approx(expected)


def test_storage_read_only_workload():
    assert storage_halfmoon_read(
        profile(p_read=1.0, p_write=0.0), 48, 256
    ) == 256.0


def test_storage_boundary_is_half():
    assert storage_boundary_read_ratio() == 0.5


def test_storage_crosses_near_equal_intensity():
    """With negligible metadata, HM-read is cheaper above ratio 0.5 and
    HM-write below, as the asymptotic analysis predicts."""
    for p_read in (0.6, 0.8):
        p = profile(p_read=p_read, p_write=1 - p_read)
        assert storage_halfmoon_read(p, 1, 10_000) < (
            storage_halfmoon_write(p, 1, 10_000)
        )
    for p_read in (0.2, 0.4):
        p = profile(p_read=p_read, p_write=1 - p_read)
        assert storage_halfmoon_read(p, 1, 10_000) > (
            storage_halfmoon_write(p, 1, 10_000)
        )


def test_runtime_extra_costs():
    p = profile(p_read=0.6, p_write=0.4, rate=100)
    # HM-read pays C_w per write: 0.4 * 100 * 1s * 2.0
    assert runtime_extra_cost_halfmoon_read(p, c_write=2.0) == (
        pytest.approx(80.0)
    )
    # HM-write pays C_r per read: 0.6 * 100 * 1.0
    assert runtime_extra_cost_halfmoon_write(p, c_read=1.0) == (
        pytest.approx(60.0)
    )


def test_runtime_boundary_two_thirds():
    assert runtime_boundary_read_ratio(2.0) == pytest.approx(2.0 / 3.0)
    assert runtime_boundary_read_ratio(1.0) == pytest.approx(0.5)
    assert runtime_boundary_read_ratio(3.0) == pytest.approx(0.75)


def test_boundary_condition_balances_extra_costs():
    """At the boundary ratio, the two protocols' expected extra costs are
    equal — the defining property of the criterion."""
    ratio = runtime_boundary_read_ratio(2.0)
    p = profile(p_read=ratio, p_write=1 - ratio)
    hm_read_cost = runtime_extra_cost_halfmoon_read(p, c_write=2.0)
    hm_write_cost = runtime_extra_cost_halfmoon_write(p, c_read=1.0)
    assert hm_read_cost == pytest.approx(hm_write_cost)


def test_profile_validation():
    with pytest.raises(ConfigError):
        WorkloadProfile(1.5, 0.5, 100).validate()
    with pytest.raises(ConfigError):
        WorkloadProfile(0.5, 0.5, 0).validate()
    with pytest.raises(ConfigError):
        runtime_boundary_read_ratio(0.0)
