"""Live compute plane smoke: real processes, one real SIGKILL.

A deliberately small end-to-end pass of ``python -m repro live``'s
machinery, sized for the tier-1 suite: two worker processes, thirty
invocations, one seeded mid-invocation SIGKILL.  The full four-system
acceptance run lives behind the CLI (and the CI ``live-smoke`` job);
this test pins the load-bearing claims —

* a logged protocol survives the kill with zero exactly-once
  violations and zero storage-consistency anomalies, and
* the ``unsafe`` control double-applies on the very same schedule,
  proving the kill landed somewhere adversarial.
"""

import glob
import os
import sys

import pytest

from repro.harness.live_exp import run_live_point
from repro.observe import Tracer, chrome_trace, read_flightrec

pytestmark = pytest.mark.skipif(
    sys.platform != "linux",
    reason="relies on SIGKILL + AF_UNIX semantics",
)

SMOKE = dict(
    workers=2, kills=1, requests=30, rate_per_s=300.0,
    lease_ms=400.0, seed=1106, deadline_s=90.0,
)


def test_boki_survives_a_real_sigkill():
    point = run_live_point("boki", **SMOKE)
    result = point.result
    assert result.extras.get("aborted") is None
    assert result.completed == SMOKE["requests"]
    assert point.kills_delivered == 1
    # The kill stranded at least one invocation; takeover recovered it.
    assert result.orphaned_invocations >= 1
    assert result.recovered_orphans >= 1
    # Exactly-once held on real processes.
    assert point.violations == 0
    assert point.consistency_anomalies == []
    # The dead worker was detected and replaced.
    assert point.workers_spawned >= SMOKE["workers"] + 1


def test_unsafe_control_violates_on_the_same_schedule():
    point = run_live_point("unsafe", **SMOKE)
    assert point.result.completed == SMOKE["requests"]
    assert point.kills_delivered == 1
    assert point.violations >= 1


def test_untraced_run_ships_no_telemetry():
    # The zero-overhead invariant: without a tracer, telemetry defaults
    # off and the run exchanges only the pre-existing frame kinds.
    point = run_live_point("boki", **SMOKE)
    extras = point.result.extras
    assert extras.get("telemetry_batches", 0) == 0
    assert extras.get("worker_spans_absorbed", 0) == 0
    assert extras.get("rpc_p50_ms") is None


def test_trace_propagation_and_flightrec(tmp_path):
    tracer = Tracer()
    point = run_live_point(
        "boki", **SMOKE, tracer=tracer, flightrec_dir=str(tmp_path)
    )
    result = point.result
    assert result.extras.get("aborted") is None
    assert point.violations == 0

    # -- telemetry arrived and was folded in ---------------------------
    assert result.extras["telemetry_batches"] > 0
    assert result.extras["worker_spans_absorbed"] > 0
    assert result.extras["rpc_p50_ms"] is not None
    assert any(
        key.startswith("rpc_roundtrip_ms{") and "worker=" in key
        for key in result.metrics
    )

    # -- worker spans share the gateway's trace ids --------------------
    spans = tracer.spans
    attempt_ids = {
        s.span_id for s in spans
        if s.name.startswith("attempt-") and "proc" not in s.args
    }
    gateway_traces = {
        s.trace_id for s in spans if "proc" not in s.args
    }
    worker_spans = [
        s for s in spans
        if str(s.args.get("proc", "")).startswith("worker-")
    ]
    assert worker_spans, "no worker spans were shipped"
    executes = [s for s in worker_spans if s.name.startswith("execute:")]
    rpcs = [s for s in worker_spans if s.name.startswith("rpc:")]
    assert executes and rpcs
    for span in worker_spans:
        assert span.trace_id in gateway_traces
    # Every worker root parents under a gateway dispatch-attempt span;
    # every worker rpc span parents under that worker's execute span.
    for span in executes:
        assert span.parent_id in attempt_ids
    execute_ids = {s.span_id for s in executes}
    for span in rpcs:
        assert span.parent_id in execute_ids
    # Gateway-side serve spans parent under the worker's rpc spans —
    # the client/server split of the same call.
    rpc_ids = {s.span_id for s in rpcs}
    serves = [s for s in spans if s.name.startswith("serve:")]
    assert serves
    assert any(s.parent_id in rpc_ids for s in serves)

    # -- the merged Chrome export is schema-valid, multi-process -------
    trace = chrome_trace(tracer)
    assert trace["displayTimeUnit"] == "ms"
    events = trace["traceEvents"]
    assert {e["ph"] for e in events} <= {"X", "i", "M"}
    procs = {
        e["args"]["name"] for e in events
        if e["ph"] == "M" and e["name"] == "process_name"
    }
    assert any(p.startswith("worker-") for p in procs)
    assert len(procs) >= 2  # gateway lane + at least one worker lane

    # -- the SIGKILL dumped a flight-recorder artifact -----------------
    dumps = glob.glob(str(tmp_path / "flightrec-gateway-sigkill-*.jsonl"))
    assert dumps, os.listdir(tmp_path)
    records = read_flightrec(dumps[0])
    header = records[0]
    assert header["trigger"] == "sigkill"
    assert header["meta"]["worker"] is not None
    assert "last_acked_op" in header["meta"]
    assert any(r.get("kind") == "sigkill" for r in records[1:])

    # -- discovery file cleaned up on shutdown -------------------------
    assert not (tmp_path / "live-gateway.json").exists()
