"""Live compute plane smoke: real processes, one real SIGKILL.

A deliberately small end-to-end pass of ``python -m repro live``'s
machinery, sized for the tier-1 suite: two worker processes, thirty
invocations, one seeded mid-invocation SIGKILL.  The full four-system
acceptance run lives behind the CLI (and the CI ``live-smoke`` job);
this test pins the load-bearing claims —

* a logged protocol survives the kill with zero exactly-once
  violations and zero storage-consistency anomalies, and
* the ``unsafe`` control double-applies on the very same schedule,
  proving the kill landed somewhere adversarial.
"""

import sys

import pytest

from repro.harness.live_exp import run_live_point

pytestmark = pytest.mark.skipif(
    sys.platform != "linux",
    reason="relies on SIGKILL + AF_UNIX semantics",
)

SMOKE = dict(
    workers=2, kills=1, requests=30, rate_per_s=300.0,
    lease_ms=400.0, seed=1106, deadline_s=90.0,
)


def test_boki_survives_a_real_sigkill():
    point = run_live_point("boki", **SMOKE)
    result = point.result
    assert result.extras.get("aborted") is None
    assert result.completed == SMOKE["requests"]
    assert point.kills_delivered == 1
    # The kill stranded at least one invocation; takeover recovered it.
    assert result.orphaned_invocations >= 1
    assert result.recovered_orphans >= 1
    # Exactly-once held on real processes.
    assert point.violations == 0
    assert point.consistency_anomalies == []
    # The dead worker was detected and replaced.
    assert point.workers_spawned >= SMOKE["workers"] + 1


def test_unsafe_control_violates_on_the_same_schedule():
    point = run_live_point("unsafe", **SMOKE)
    assert point.result.completed == SMOKE["requests"]
    assert point.kills_delivered == 1
    assert point.violations >= 1
