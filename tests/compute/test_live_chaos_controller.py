"""LiveChaosController: seeded schedules, arm/fire/disarm mechanics."""

import numpy as np

from repro.compute.chaos import (
    ELIGIBLE_WRITE_OPS,
    KillEvent,
    LiveChaosController,
)


def make(kills=3, total=200, seed=7):
    return LiveChaosController(
        kills, total, np.random.default_rng(seed)
    )


def test_thresholds_deterministic_and_in_window():
    a, b = make(), make()
    assert a.thresholds == b.thresholds
    assert len(a.thresholds) == 3
    lo, hi = int(200 * 0.15), int(200 * 0.70)
    for threshold in a.thresholds:
        assert lo <= threshold <= hi + 3  # +collision nudges
    assert a.thresholds == sorted(a.thresholds)


def test_thresholds_never_collide():
    # Many kills over a tiny schedule force draw collisions; the
    # nudge-forward dedup must keep every threshold distinct.
    chaos = LiveChaosController(10, 20, np.random.default_rng(0))
    assert len(set(chaos.thresholds)) == 10


def test_zero_kills_never_arms():
    chaos = make(kills=0)
    chaos.note_completion(10_000)
    assert not chaos.should_kill("kv", "put")


def test_arm_fire_disarm_cycle():
    chaos = make(kills=1, total=100)
    threshold = chaos.thresholds[0]
    chaos.note_completion(threshold - 1)
    assert not chaos.should_kill("kv", "put")
    chaos.note_completion(threshold)
    # Armed: fires only on an eligible write op.
    assert not chaos.should_kill("log", "append")
    assert not chaos.should_kill("kv", "get_optional")
    assert chaos.should_kill("kv", "put")
    chaos.record_kill(KillEvent(
        worker_id=0, pid=1, instance_id="i", op="kv.put",
        at_ms=5.0, completed_before=threshold,
    ))
    assert chaos.delivered == 1
    # Disarmed again, and no thresholds remain.
    chaos.note_completion(10_000)
    assert not chaos.should_kill("kv", "put")


def test_eligible_ops_cover_every_protocol_write_path():
    # kv.put / kv.conditional_put: boki, halfmoon-write, unsafe.
    # mv.write_version: halfmoon-read (versioned store for log-free
    # reads).  A protocol whose user-visible write is not eligible
    # would silently receive zero kills (regression: halfmoon-read).
    assert ("kv", "put") in ELIGIBLE_WRITE_OPS
    assert ("kv", "conditional_put") in ELIGIBLE_WRITE_OPS
    assert ("mv", "write_version") in ELIGIBLE_WRITE_OPS


def test_detection_latency_property():
    event = KillEvent(worker_id=1, pid=2, instance_id="x", op="kv.put",
                      at_ms=100.0, completed_before=5)
    assert event.detection_ms is None
    event.detected_at_ms = 450.0
    assert event.detection_ms == 350.0
