"""Wire codec tests: values and exceptions must survive the socket."""

import pickle

import pytest

from repro.compute import rpc
from repro.errors import (
    ConditionalAppendError,
    FencedEpochError,
    ServiceUnavailableError,
)
from repro.sharedlog.record import LogRecord


def roundtrip(value):
    blob = pickle.dumps(rpc.encode_value(value))
    return rpc.decode_value(pickle.loads(blob))


def test_plain_values_pass_through():
    for value in (None, 0, 3.5, "key", b"bytes", True):
        assert roundtrip(value) == value


def test_log_record_roundtrip():
    record = LogRecord(7, ("tag-a", "tag-b"), {"op": "write", "v": 1}, 64)
    out = roundtrip(record)
    assert isinstance(out, LogRecord)
    assert out.seqnum == 7
    assert out.tags == ("tag-a", "tag-b")
    assert dict(out.data) == {"op": "write", "v": 1}
    assert out.payload_bytes == 64


def test_log_record_raw_pickle_fails_without_codec():
    # The codec exists because this fails: MappingProxyType in a slots
    # dataclass is not picklable.  If this starts passing, the codec
    # special case can be retired.
    record = LogRecord(1, ("t",), {"k": "v"}, 0)
    with pytest.raises(Exception):
        pickle.dumps(record)


def test_nested_structures_with_records():
    record = LogRecord(3, ("t",), {"x": 1}, 8)
    value = {"records": [record, record], "pair": (record, None), "n": 2}
    out = roundtrip(value)
    assert out["n"] == 2
    assert all(isinstance(r, LogRecord) for r in out["records"])
    assert out["pair"][0].seqnum == 3


def test_error_roundtrip_preserves_class_and_state():
    # Custom ctor signature: pickle's default reconstruction would
    # break; the codec must rebuild the same class with its state.
    exc = ConditionalAppendError("tag occupied", existing_seqnum=41)
    out = rpc.decode_error(pickle.loads(pickle.dumps(rpc.encode_error(exc))))
    assert type(out) is ConditionalAppendError
    assert out.existing_seqnum == 41
    assert "tag occupied" in str(out)


def test_error_roundtrip_retryable_taxonomy():
    # The worker's retry loop dispatches on these classes: identity
    # across the process boundary is what keeps resilience working.
    exc = ServiceUnavailableError("gone", service="log", op="append")
    out = rpc.decode_error(pickle.loads(pickle.dumps(rpc.encode_error(exc))))
    assert type(out) is ServiceUnavailableError
    assert out.service == "log"
    assert out.op == "append"

    fenced = FencedEpochError("stale", stale_epoch=2, current_epoch=5)
    out = rpc.decode_error(
        pickle.loads(pickle.dumps(rpc.encode_error(fenced)))
    )
    assert type(out) is FencedEpochError
    assert out.stale_epoch == 2
    assert out.current_epoch == 5


def test_unknown_error_class_degrades_to_runtime_error():
    payload = ("no.such.module", "Gone", ("boom",), {})
    out = rpc.decode_error(payload)
    assert isinstance(out, RuntimeError)
    assert "Gone" in str(out) or "boom" in str(out)


def test_frame_roundtrip_over_socketpair():
    import socket

    a, b = socket.socketpair()
    try:
        frame = (rpc.OP, 3, "kv", "put", ("k", "v"), {})
        rpc.send_frame(a, frame)
        assert rpc.recv_frame(b) == frame
        a.close()
        assert rpc.recv_frame(b) is None  # clean EOF -> None, not raise
    finally:
        b.close()
