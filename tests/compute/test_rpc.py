"""Wire codec tests: values and exceptions must survive the socket."""

import pickle

import pytest

from repro.compute import rpc
from repro.errors import (
    ConditionalAppendError,
    FencedEpochError,
    ServiceUnavailableError,
)
from repro.sharedlog.record import LogRecord


def roundtrip(value):
    blob = pickle.dumps(rpc.encode_value(value))
    return rpc.decode_value(pickle.loads(blob))


def test_plain_values_pass_through():
    for value in (None, 0, 3.5, "key", b"bytes", True):
        assert roundtrip(value) == value


def test_log_record_roundtrip():
    record = LogRecord(7, ("tag-a", "tag-b"), {"op": "write", "v": 1}, 64)
    out = roundtrip(record)
    assert isinstance(out, LogRecord)
    assert out.seqnum == 7
    assert out.tags == ("tag-a", "tag-b")
    assert dict(out.data) == {"op": "write", "v": 1}
    assert out.payload_bytes == 64


def test_log_record_pickles_natively():
    # LogRecord.__reduce__ rebuilds the frozen MappingProxyType on the
    # far side, so the codec's old tagged-tuple special case is retired;
    # raw pickle must keep the payload frozen.
    record = LogRecord(1, ("t",), {"k": "v"}, 0)
    out = pickle.loads(pickle.dumps(record))
    assert out == record
    with pytest.raises(TypeError):
        out.data["k"] = "mutated"


def test_nested_structures_with_records():
    record = LogRecord(3, ("t",), {"x": 1}, 8)
    value = {"records": [record, record], "pair": (record, None), "n": 2}
    out = roundtrip(value)
    assert out["n"] == 2
    assert all(isinstance(r, LogRecord) for r in out["records"])
    assert out["pair"][0].seqnum == 3


def test_error_roundtrip_preserves_class_and_state():
    # Custom ctor signature: pickle's default reconstruction would
    # break; the codec must rebuild the same class with its state.
    exc = ConditionalAppendError("tag occupied", existing_seqnum=41)
    out = rpc.decode_error(pickle.loads(pickle.dumps(rpc.encode_error(exc))))
    assert type(out) is ConditionalAppendError
    assert out.existing_seqnum == 41
    assert "tag occupied" in str(out)


def test_error_roundtrip_retryable_taxonomy():
    # The worker's retry loop dispatches on these classes: identity
    # across the process boundary is what keeps resilience working.
    exc = ServiceUnavailableError("gone", service="log", op="append")
    out = rpc.decode_error(pickle.loads(pickle.dumps(rpc.encode_error(exc))))
    assert type(out) is ServiceUnavailableError
    assert out.service == "log"
    assert out.op == "append"

    fenced = FencedEpochError("stale", stale_epoch=2, current_epoch=5)
    out = rpc.decode_error(
        pickle.loads(pickle.dumps(rpc.encode_error(fenced)))
    )
    assert type(out) is FencedEpochError
    assert out.stale_epoch == 2
    assert out.current_epoch == 5


def test_unknown_error_class_degrades_to_runtime_error():
    payload = ("no.such.module", "Gone", ("boom",), {})
    out = rpc.decode_error(payload)
    assert isinstance(out, RuntimeError)
    assert "Gone" in str(out) or "boom" in str(out)


def test_frame_roundtrip_over_socketpair():
    import socket

    a, b = socket.socketpair()
    try:
        frame = (rpc.OP, 3, "kv", "put", ("k", "v"), {})
        rpc.send_frame(a, frame)
        assert rpc.recv_frame(b) == frame
        a.close()
        assert rpc.recv_frame(b) is None  # clean EOF -> None, not raise
    finally:
        b.close()


# -- frame-cap defenses ---------------------------------------------------


def test_oversized_send_raises_typed_error():
    import socket

    a, b = socket.socketpair()
    try:
        with pytest.raises(rpc.RpcFrameError) as info:
            rpc.send_frame(a, b"x" * 4096, max_bytes=1024)
        assert info.value.frame_bytes > 1024
    finally:
        a.close()
        b.close()


def test_oversized_length_prefix_rejected_before_allocation():
    # A hostile/corrupt 4-byte prefix must raise the typed error
    # instead of attempting a multi-gigabyte recv.
    import socket
    import struct

    a, b = socket.socketpair()
    try:
        a.sendall(struct.pack("<I", 0xFFFF_FFFF) + b"junk")
        with pytest.raises(rpc.RpcFrameError) as info:
            rpc.recv_frame(b)
        assert info.value.frame_bytes == 0xFFFF_FFFF
    finally:
        a.close()
        b.close()


def test_fuzzed_length_prefixes():
    """Seeded fuzz over the length prefix: every frame either decodes,
    reports EOF (truncated), or raises the typed RpcFrameError — never
    a raw struct/pickle/MemoryError."""
    import socket
    import struct

    import numpy as np

    rng = np.random.default_rng(1106)
    cap = 4096
    for _ in range(200):
        a, b = socket.socketpair()
        try:
            length = int(rng.integers(0, 2**32))
            body_len = int(rng.integers(0, 64))
            body = bytes(rng.integers(0, 256, size=body_len, dtype=np.uint8))
            a.sendall(struct.pack("<I", length) + body)
            a.close()
            try:
                frame = rpc.recv_frame(b, max_bytes=cap)
            except rpc.RpcFrameError:
                assert length > cap or body_len >= length
            else:
                # Decoded or truncated-EOF; both are in-contract.
                assert frame is None or length <= cap
        finally:
            b.close()


def test_async_reader_raises_on_oversized_and_corrupt_frames():
    import asyncio
    import struct

    async def scenario():
        # Oversized announced length.
        reader = asyncio.StreamReader()
        reader.feed_data(struct.pack("<I", 1 << 30) + b"x")
        reader.feed_eof()
        with pytest.raises(rpc.RpcFrameError):
            await rpc.read_frame_async(reader, max_bytes=1024)
        # Well-sized but undecodable body.
        reader = asyncio.StreamReader()
        reader.feed_data(struct.pack("<I", 3) + b"abc")
        reader.feed_eof()
        with pytest.raises(rpc.RpcFrameError):
            await rpc.read_frame_async(reader)

    asyncio.run(scenario())


def test_undecodable_body_raises_typed_error():
    import socket
    import struct

    a, b = socket.socketpair()
    try:
        a.sendall(struct.pack("<I", 4) + b"\x80\x05junk"[:4])
        with pytest.raises(rpc.RpcFrameError):
            rpc.recv_frame(b)
    finally:
        a.close()
        b.close()
