"""Registry ``sim`` backend must be bit-identical to direct SimPlatform.

The compute-plane registry is pure plumbing for the DES path: the
``sim`` backend wraps :class:`SimPlatform` without touching seeding,
dispatch, or metrics.  This golden-cell regression pins that — every
number a sweep reads off the result must match exactly.
"""

import pytest

from repro.compute import available_backends, build_compute_plane
from repro.config import SystemConfig
from repro.errors import ConfigError
from repro.harness.failover import CounterWorkload
from repro.harness.platform import SimPlatform


def run_direct(protocol, seed):
    config = SystemConfig().with_seed(seed).validate()
    workload = CounterWorkload(num_keys=700, read_ratio=0.3)
    platform = SimPlatform(workload, protocol, config=config)
    return platform.run(400.0, 1_500.0)


def run_via_registry(protocol, seed):
    config = SystemConfig().with_seed(seed).validate()
    workload = CounterWorkload(num_keys=700, read_ratio=0.3)
    plane = build_compute_plane("sim", workload, protocol, config=config)
    return plane.run(400.0, 1_500.0)


@pytest.mark.parametrize("protocol", ["boki", "halfmoon-read"])
def test_sim_backend_bit_identical(protocol):
    direct = run_direct(protocol, seed=93)
    wrapped = run_via_registry(protocol, seed=93)
    assert wrapped.completed == direct.completed
    assert wrapped.median_ms == direct.median_ms
    assert wrapped.p99_ms == direct.p99_ms
    assert wrapped.mean_ms == direct.mean_ms
    assert wrapped.avg_log_bytes == direct.avg_log_bytes
    assert wrapped.avg_db_bytes == direct.avg_db_bytes
    assert wrapped.counters == direct.counters
    assert wrapped.time_by_kind == direct.time_by_kind


def test_registry_lists_both_backends():
    names = available_backends()
    assert "sim" in names
    assert "localhost" in names


def test_unknown_backend_is_a_config_error():
    workload = CounterWorkload(num_keys=10)
    with pytest.raises(ConfigError):
        build_compute_plane("no-such-backend", workload, "boki")


def test_sim_plane_delegates_runtime_and_callback():
    config = SystemConfig().with_seed(5).validate()
    workload = CounterWorkload(num_keys=150, read_ratio=0.3)
    plane = build_compute_plane("sim", workload, "boki", config=config)
    seen = []
    plane.on_request_complete = (
        lambda request, latency_ms: seen.append(request.func_name)
    )
    result = plane.run(200.0, 500.0)
    assert result.completed > 0
    assert len(seen) == result.completed
    assert plane.runtime is not None
    plane.close()
