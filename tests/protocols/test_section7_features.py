"""Tests for the Section 7 optional features: opportunistic read
checkpointing (recovery speed-up) and read-only object hints."""

import pytest

from repro import (
    CrashOnceAtEvery,
    LocalRuntime,
    ProtocolConfig,
    SystemConfig,
)
from repro.errors import ProtocolError
from repro.runtime import Cost, checkpoint_tag
from tests.conftest import make_runtime


def checkpointing_runtime(crash_policy=None):
    config = SystemConfig(
        seed=3,
        protocol=ProtocolConfig(checkpoint_log_free_reads=True),
    )
    runtime = LocalRuntime(config, protocol="halfmoon-read",
                           crash_policy=crash_policy)
    runtime.populate("X", "x0")
    runtime.populate("Y", "y0")
    return runtime


class TestReadCheckpointing:
    def test_checkpoints_written_to_own_stream(self):
        runtime = checkpointing_runtime()
        session = runtime.open_session().init()
        session.read("X")
        session.read("Y")
        records = runtime.backend.log.read_stream(
            checkpoint_tag(session.env.instance_id)
        )
        assert [r["idx"] for r in records] == [0, 1]
        assert [r["data"] for r in records] == ["x0", "y0"]
        session.finish()

    def test_checkpoints_cost_no_latency(self):
        # Degenerate latency distributions make the comparison exact.
        from dataclasses import replace

        from tests.conftest import deterministic_config

        def build(checkpointing):
            config = replace(
                deterministic_config(),
                protocol=ProtocolConfig(
                    checkpoint_log_free_reads=checkpointing
                ),
            )
            runtime = LocalRuntime(config, protocol="halfmoon-read")
            runtime.populate("X", "x0")
            runtime.register("r", lambda ctx, inp: ctx.read("X"))
            return runtime

        plain = build(False)
        with_ckpt = build(True)
        baseline = plain.invoke("r").latency_ms
        checkpointed = with_ckpt.invoke("r").latency_ms
        assert checkpointed == pytest.approx(baseline, rel=1e-6)
        assert with_ckpt.backend.counters.get(
            Cost.LOG_APPEND_BACKGROUND
        ) == 1

    def test_replay_recovers_reads_from_checkpoints(self):
        runtime = checkpointing_runtime()
        session = runtime.open_session().init()
        assert session.read("X") == "x0"
        # Replay: the read must come from the checkpoint, not a fresh
        # version lookup.
        log_reads_before = runtime.backend.counters.get(Cost.LOG_READ)
        replay = session.replay().init()
        assert replay.read("X") == "x0"
        log_reads_after = runtime.backend.counters.get(Cost.LOG_READ)
        # init loads step log + checkpoint stream (2 reads); the read
        # itself does no logReadPrev.
        assert log_reads_after - log_reads_before == 2
        session.finish()

    def test_exactly_once_with_checkpointing(self):
        def fn(ctx, inp):
            a = ctx.read("X")
            ctx.write("X", a + "!")
            b = ctx.read("Y")
            return (a, b)

        reference = None
        for crash_at in range(0, 25):
            policy = CrashOnceAtEvery(crash_at) if crash_at else None
            runtime = checkpointing_runtime(policy)
            runtime.register("fn", fn)
            result = runtime.invoke("fn")
            probe = runtime.open_session().init()
            state = (probe.read("X"), probe.read("Y"))
            probe.finish()
            if reference is None:
                reference = (result.output, state)
            else:
                assert (result.output, state) == reference, crash_at

    def test_gc_reclaims_checkpoint_stream(self):
        runtime = checkpointing_runtime()
        result_holder = {}

        def fn(ctx, inp):
            result_holder["id"] = ctx.env.instance_id
            return ctx.read("X")

        runtime.register("fn", fn)
        runtime.invoke("fn")
        tag = checkpoint_tag(result_holder["id"])
        assert len(runtime.backend.log.read_stream(tag)) == 1
        runtime.run_gc()
        assert runtime.backend.log.read_stream(tag) == []


class TestReadOnlyHints:
    def test_read_only_reads_bypass_logging(self, protocol_name):
        runtime = make_runtime(protocol_name)
        runtime.populate("const", 42)
        runtime.mark_read_only("const")
        session = runtime.open_session().init()
        appends = runtime.backend.log.append_count
        log_reads = runtime.backend.counters.get(Cost.LOG_READ)
        assert session.read("const") == 42
        assert runtime.backend.log.append_count == appends
        assert runtime.backend.counters.get(Cost.LOG_READ) == log_reads
        session.finish()

    def test_read_only_write_rejected(self, protocol_name):
        runtime = make_runtime(protocol_name)
        runtime.populate("const", 42)
        runtime.mark_read_only("const")
        session = runtime.open_session().init()
        with pytest.raises(ProtocolError):
            session.write("const", 43)
        session.finish()

    def test_read_only_replay_is_trivially_idempotent(self, protocol_name):
        runtime = make_runtime(protocol_name)
        runtime.populate("const", 42)
        runtime.mark_read_only("const")
        session = runtime.open_session().init()
        assert session.read("const") == 42
        replay = session.replay().init()
        assert replay.read("const") == 42
        session.finish()
