"""Executable version of the log-optimality argument (Section 4.3).

Lemma 4.5's proof constructs a counterexample: a protocol with log-free
*reads* concurrent with log-free *writes* (with visible external effect)
cannot recover a crashed read's result.  These tests build that exact
scenario against the real substrates and show:

1. the hybrid (log-free read + log-free write) protocol violates
   idempotence — the counterexample is realizable;
2. each Halfmoon protocol defends by logging the *other* side — the same
   interleaving is harmless;
3. the worst-case log counts of the two protocols match Theorem 4.6's
   floor: reads+writes never both go unlogged.
"""

import pytest

from repro.runtime import Cost
from tests.conftest import make_runtime


def test_lemma_4_5_counterexample_breaks_hybrid_protocol():
    """Log-free read + concurrent log-free write => unrecoverable read.

    We emulate the hybrid protocol by issuing a raw (unsafe) read and
    letting a log-free write overwrite the object during the "crash".
    The replayed read cannot recover the pre-crash value: the old state
    is gone (log-free writes are memoryless, Assumption 4.3).
    """
    runtime = make_runtime("unsafe")
    runtime.populate("X", "before")

    victim = runtime.open_session().init()
    first_read = victim.read("X")       # log-free read
    assert first_read == "before"
    # victim crashes here; during the outage a log-free write lands:
    writer = runtime.open_session().init()
    writer.write("X", "after")          # memoryless overwrite
    writer.finish()
    replay = victim.replay().init()
    second_read = replay.read("X")
    # Idempotence demands second_read == first_read; the hybrid fails.
    assert second_read != first_read
    replay.finish()


def test_halfmoon_write_defends_by_logging_reads():
    runtime = make_runtime("halfmoon-write")
    runtime.populate("X", "before")
    victim = runtime.open_session().init()
    assert victim.read("X") == "before"   # logged
    writer = runtime.open_session().init()
    writer.read("X")
    writer.write("X", "after")            # log-free overwrite
    writer.finish()
    replay = victim.replay().init()
    assert replay.read("X") == "before"   # recovered from the read log
    replay.finish()


def test_halfmoon_read_defends_by_logging_writes():
    runtime = make_runtime("halfmoon-read")
    runtime.populate("X", "before")
    victim = runtime.open_session().init()
    assert victim.read("X") == "before"   # log-free
    writer = runtime.open_session().init()
    writer.write("X", "after")            # logged, multi-versioned
    writer.finish()
    replay = victim.replay().init()
    # The old version still exists; the stable cursor re-locates it.
    assert replay.read("X") == "before"
    replay.finish()


def count_logged_ops(runtime, fn):
    counters_before = dict(runtime.backend.counters.as_dict())
    fn()
    counters_after = runtime.backend.counters.as_dict()
    return sum(
        counters_after.get(kind, 0) - counters_before.get(kind, 0)
        for kind in Cost.LOGGING_KINDS
    )


@pytest.mark.parametrize(
    "protocol,expected_read_logs,expected_write_logs",
    [
        # (appends per read, appends per write)
        ("halfmoon-read", 0, 2),   # prototype mode logs twice per write
        ("halfmoon-write", 1, 0),
        ("boki", 1, 2),
    ],
)
def test_per_operation_log_counts(
    protocol, expected_read_logs, expected_write_logs
):
    """Theorem 4.6: each Halfmoon protocol zeroes one side's logging and
    the symmetric baseline logs both sides."""
    runtime = make_runtime(protocol)
    runtime.populate("X", "x0")
    session = runtime.open_session().init()
    read_logs = count_logged_ops(runtime, lambda: session.read("X"))
    write_logs = count_logged_ops(
        runtime, lambda: session.write("X", "x1")
    )
    assert read_logs == expected_read_logs
    assert write_logs == expected_write_logs
    session.finish()


def test_no_protocol_is_log_free_on_both_sides():
    """Scanning the registered protocols: every exactly-once protocol logs
    reads or writes (the unsafe one logs neither and is not exactly-once)."""
    from repro.protocols import PROTOCOL_CLASSES

    for name, cls in PROTOCOL_CLASSES.items():
        if name == "unsafe":
            assert not cls.logs_reads and not cls.logs_writes
        else:
            assert cls.logs_reads or cls.logs_writes, (
                f"{name} claims exactly-once but logs neither side"
            )
