"""Unit tests for the symmetric (Boki-style) baseline protocol."""

import pytest

from repro.runtime import instance_tag
from tests.conftest import make_runtime


@pytest.fixture
def runtime():
    rt = make_runtime("boki")
    rt.populate("X", "x0")
    rt.populate("Y", "y0")
    return rt


def test_reads_and_writes_both_logged(runtime):
    session = runtime.open_session().init()
    before = runtime.backend.log.append_count
    session.read("X")
    assert runtime.backend.log.append_count == before + 1
    session.write("X", "x1")
    assert runtime.backend.log.append_count == before + 3  # intent+commit
    session.finish()


def test_step_log_order(runtime):
    session = runtime.open_session().init()
    session.read("X")
    session.write("Y", "y1")
    ops = [
        r["op"] for r in runtime.backend.log.read_stream(
            instance_tag(session.env.instance_id)
        )
    ]
    assert ops == ["init", "read", "write-intent", "write"]
    session.finish()


def test_reads_see_latest(runtime):
    a = runtime.open_session().init()
    b = runtime.open_session().init()
    b.write("X", "newer")
    assert a.read("X") == "newer"
    a.finish()
    b.finish()


def test_replayed_read_recovers_logged_value(runtime):
    session = runtime.open_session().init()
    assert session.read("X") == "x0"
    other = runtime.open_session().init()
    other.write("X", "changed")
    other.finish()
    replay = session.replay().init()
    assert replay.read("X") == "x0"
    replay.finish()


def test_replayed_write_not_duplicated(runtime):
    session = runtime.open_session().init()
    session.write("X", "x1")
    writes = runtime.backend.kv.write_count
    replay = session.replay().init()
    replay.write("X", "x1")
    assert runtime.backend.kv.write_count == writes
    replay.finish()


def test_write_is_conditional_on_intent_version(runtime):
    """A replayed Boki write that raced with a newer write must lose the
    conditional update."""
    from repro.errors import CrashError

    state = {"arm": False}

    def hook(label):
        if state["arm"] and label.startswith("log_cond_append:pre"):
            state["arm"] = False
            raise CrashError()

    session = runtime.open_session(fault_hook=hook).init()
    # Crash after the conditional DB write but before the commit record.
    state["arm"] = False
    session.write("X", "mine")          # completes fully
    other = runtime.open_session().init()
    other.write("X", "newer")           # newer intent seqnum wins
    other.finish()
    replay = session.replay().init()
    replay.write("X", "mine")           # replays; commit record exists
    assert runtime.backend.kv.get("X") == "newer"
    replay.finish()


def test_boki_is_single_version(runtime):
    session = runtime.open_session().init()
    session.write("X", "x1")
    session.write("X", "x2")
    assert runtime.backend.mv.list_versions("X") == ["genesis"]
    session.finish()
