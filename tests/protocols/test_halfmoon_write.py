"""Unit tests for the Halfmoon-write protocol (Figure 7, Section 4.2)."""

import pytest

from repro import LocalRuntime, ProtocolConfig, SystemConfig
from repro.runtime import instance_tag
from tests.conftest import make_runtime


@pytest.fixture
def runtime():
    rt = make_runtime("halfmoon-write")
    rt.populate("X", "x0")
    rt.populate("Y", "y0")
    rt.populate("Z", "z0")
    return rt


def test_writes_are_log_free(runtime):
    session = runtime.open_session().init()
    before = runtime.backend.log.append_count
    session.write("X", "x1")
    session.write("Y", "y1")
    assert runtime.backend.log.append_count == before
    assert runtime.backend.kv.get("X") == "x1"
    session.finish()


def test_reads_are_logged_with_data(runtime):
    session = runtime.open_session().init()
    session.read("X")
    records = runtime.backend.log.read_stream(
        instance_tag(session.env.instance_id)
    )
    assert records[-1]["op"] == "read"
    assert records[-1]["data"] == "x0"
    session.finish()


def test_read_log_is_private_to_instance(runtime):
    """No per-object read log: the record carries only the instance tag."""
    session = runtime.open_session().init()
    session.read("X")
    records = runtime.backend.log.read_stream(
        instance_tag(session.env.instance_id)
    )
    read_record = records[-1]
    assert read_record.tags == (instance_tag(session.env.instance_id),)


def test_reads_always_see_latest(runtime):
    a = runtime.open_session().init()
    b = runtime.open_session().init()
    b.write("X", "from-b")
    assert a.read("X") == "from-b"  # real-time reads, unlike HM-read
    a.finish()
    b.finish()


def test_version_tuple_structure(runtime):
    session = runtime.open_session().init()
    session.write("X", "x1")
    _, version = runtime.backend.kv.get_with_version("X")
    assert version == (session.env.cursor_ts, 1)
    session.write("X", "x2")
    _, version = runtime.backend.kv.get_with_version("X")
    assert version == (session.env.cursor_ts, 2)
    session.finish()


def test_counter_resets_on_read(runtime):
    session = runtime.open_session().init()
    session.write("X", "x1")
    session.write("X", "x2")
    assert session.env.consecutive_writes == 2
    session.read("Y")
    assert session.env.consecutive_writes == 0
    session.write("X", "x3")
    _, version = runtime.backend.kv.get_with_version("X")
    assert version[1] == 1  # counter restarted after the read
    session.finish()


def test_stale_write_loses_conditional_update(runtime):
    """The Figure 6 scenario: a writer with an older cursor must not
    overwrite a fresher writer's value."""
    f1 = runtime.open_session().init()   # older cursor
    f2 = runtime.open_session().init()
    f2.read("Y")                          # f2's cursor advances
    f2.write("X", "from-f2")
    f1.write("X", "from-f1")              # older version: rejected
    assert runtime.backend.kv.get("X") == "from-f2"
    f1.finish()
    f2.finish()


def test_fresher_write_wins(runtime):
    f1 = runtime.open_session().init()
    f2 = runtime.open_session().init()
    f2.write("Z", "from-f2")
    f1.read("Y")                          # f1 is now at least as fresh
    f1.write("Z", "from-f1")
    assert runtime.backend.kv.get("Z") == "from-f1"
    f1.finish()
    f2.finish()


def test_replayed_write_is_rejected_not_duplicated(runtime):
    session = runtime.open_session().init()
    session.read("Y")
    session.write("X", "mine")
    # Another SSF with a fresher cursor overwrites.
    other = runtime.open_session().init()
    other.read("Y")
    other.write("X", "fresher")
    other.finish()
    # The first SSF replays: its write must not clobber the fresher value.
    replay = session.replay().init()
    replay.read("Y")   # replayed from the step log, cursor restored
    replay.write("X", "mine")
    assert runtime.backend.kv.get("X") == "fresher"
    replay.finish()


def test_replayed_read_returns_logged_value_not_current(runtime):
    session = runtime.open_session().init()
    assert session.read("X") == "x0"
    other = runtime.open_session().init()
    other.write("X", "changed")
    other.finish()
    replay = session.replay().init()
    assert replay.read("X") == "x0"  # recovered from the read log
    replay.finish()


def test_replayed_read_does_not_relog(runtime):
    session = runtime.open_session().init()
    session.read("X")
    appends = runtime.backend.log.append_count
    replay = session.replay().init()
    replay.read("X")
    assert runtime.backend.log.append_count == appends


class TestOrderedWriteExtension:
    @pytest.fixture
    def ordered_runtime(self):
        config = SystemConfig(
            protocol=ProtocolConfig(preserve_consecutive_write_order=True)
        )
        rt = LocalRuntime(config, protocol="halfmoon-write")
        rt.populate("X", "x0")
        rt.populate("Y", "y0")
        return rt

    def test_barrier_between_writes_to_different_objects(
        self, ordered_runtime
    ):
        session = ordered_runtime.open_session().init()
        before = ordered_runtime.backend.log.append_count
        session.write("X", "x1")
        session.write("Y", "y1")  # different object: barrier logged
        assert ordered_runtime.backend.log.append_count == before + 1
        session.finish()

    def test_no_barrier_for_same_object_runs(self, ordered_runtime):
        session = ordered_runtime.open_session().init()
        before = ordered_runtime.backend.log.append_count
        session.write("X", "x1")
        session.write("X", "x2")
        session.write("X", "x3")
        assert ordered_runtime.backend.log.append_count == before
        session.finish()

    def test_no_barrier_after_read(self, ordered_runtime):
        session = ordered_runtime.open_session().init()
        session.write("X", "x1")
        session.read("Y")  # the read's log record is the barrier
        before = ordered_runtime.backend.log.append_count
        session.write("Y", "y1")
        assert ordered_runtime.backend.log.append_count == before
        session.finish()

    def test_barrier_orders_cross_object_writes(self, ordered_runtime):
        """With the extension, the second write's version exceeds the
        first's cursor, so the pair cannot commute."""
        session = ordered_runtime.open_session().init()
        session.write("X", "x1")
        _, vx = ordered_runtime.backend.kv.get_with_version("X")
        session.write("Y", "y1")
        _, vy = ordered_runtime.backend.kv.get_with_version("Y")
        assert vy[0] > vx[0]  # strictly ordered by cursor
        session.finish()

    def test_barrier_replay_is_stable(self, ordered_runtime):
        session = ordered_runtime.open_session().init()
        session.write("X", "x1")
        session.write("Y", "y1")
        appends = ordered_runtime.backend.log.append_count
        replay = session.replay().init()
        replay.write("X", "x1")
        replay.write("Y", "y1")
        assert ordered_runtime.backend.log.append_count == appends
        session.finish()
