"""Exhaustive exactly-once verification.

For every logged protocol and several workload shapes, crash the first
attempt at *every* checkpoint in turn and verify that the re-executed
invocation produces exactly the effects of a single crash-free run: same
return value, same externally visible state, no duplicated updates.
"""

import pytest

from repro import CrashOnceAtEvery, LocalRuntime, ScriptedCrashes, SystemConfig
from tests.conftest import PROTOCOLS, make_runtime

MAX_CHECKPOINTS = 80


def read_modify_write(ctx, inp):
    value = ctx.read("X")
    ctx.write("X", value + 1)
    y = ctx.read("Y")
    ctx.write("Y", y + value + 1)
    return (value, y)


def write_only(ctx, inp):
    ctx.write("X", inp)
    ctx.write("Y", inp * 2)
    ctx.write("X", inp + 1)
    return inp


def chained_workflow(ctx, inp):
    first = ctx.invoke("step1", inp)
    second = ctx.invoke("step2", first)
    return second


def step1(ctx, inp):
    value = ctx.read("X")
    ctx.write("X", value + inp)
    return value + inp


def step2(ctx, inp):
    value = ctx.read("Y")
    ctx.write("Y", value + inp)
    return value + inp


WORKLOADS = {
    "read-modify-write": (read_modify_write, 7),
    "write-only": (write_only, 7),
    "workflow": (chained_workflow, 7),
}


def build(protocol, crash_policy=None, seed=77):
    runtime = LocalRuntime(
        SystemConfig(seed=seed), protocol=protocol,
        crash_policy=crash_policy,
    )
    runtime.populate("X", 100)
    runtime.populate("Y", 1000)
    for name, (fn, _) in WORKLOADS.items():
        runtime.register(name, fn)
    runtime.register("step1", step1)
    runtime.register("step2", step2)
    runtime.register(
        "probe", lambda ctx, inp: (ctx.read("X"), ctx.read("Y"))
    )
    return runtime


def reference_run(protocol, workload):
    fn, inp = WORKLOADS[workload]
    runtime = build(protocol)
    result = runtime.invoke(workload, inp)
    state = runtime.invoke("probe").output
    return result.output, state


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_crash_at_every_checkpoint(protocol, workload):
    expected_output, expected_state = reference_run(protocol, workload)
    fired_any = False
    for checkpoint in range(1, MAX_CHECKPOINTS):
        policy = CrashOnceAtEvery(checkpoint)
        runtime = build(protocol, crash_policy=policy)
        _, inp = WORKLOADS[workload]
        result = runtime.invoke(workload, inp)
        state = runtime.invoke("probe").output
        assert result.output == expected_output, (
            f"{protocol}/{workload}: output diverged at checkpoint "
            f"{checkpoint}"
        )
        assert state == expected_state, (
            f"{protocol}/{workload}: state diverged at checkpoint "
            f"{checkpoint}"
        )
        if policy.crashes_fired == 0:
            fired_any = checkpoint > 1
            break
    assert fired_any, "the sweep never exhausted the checkpoint range"


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_double_crash_still_exactly_once(protocol):
    expected_output, expected_state = reference_run(
        protocol, "read-modify-write"
    )
    for first in range(2, 14, 3):
        for second in range(2, 14, 4):
            runtime = build(
                protocol,
                crash_policy=ScriptedCrashes({1: first, 2: second}),
            )
            result = runtime.invoke("read-modify-write", 7)
            state = runtime.invoke("probe").output
            assert result.output == expected_output
            assert state == expected_state


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_concurrent_traffic_with_crashes(protocol):
    """Crashing invocations interleaved with clean ones on shared keys:
    the final counter equals the number of increments."""
    runtime = build(protocol, crash_policy=None)

    def increment(ctx, inp):
        ctx.write("X", ctx.read("X") + 1)
        return None

    runtime.register("increment", increment)
    crash_points = {1: 4, 3: 6, 5: 3, 7: 9}
    for i in range(10):
        runtime.crash_policy = (
            ScriptedCrashes({1: crash_points[i]})
            if i in crash_points else ScriptedCrashes({})
        )
        runtime.invoke("increment")
    probe = runtime.invoke("probe")
    assert probe.output[0] == 110  # 100 + 10 increments exactly-once
