"""Unit tests for the unsafe baseline — including the anomaly it permits."""

import pytest

from repro import LocalRuntime, ScriptedCrashes, SystemConfig
from tests.conftest import make_runtime


@pytest.fixture
def runtime():
    rt = make_runtime("unsafe")
    rt.populate("X", 0)
    return rt


def test_no_logging_at_all(runtime):
    runtime.register("rw", lambda ctx, inp: (
        ctx.write("X", ctx.read("X") + 1)
    ))
    before = runtime.backend.log.append_count
    runtime.invoke("rw")
    assert runtime.backend.log.append_count == before


def test_reads_and_writes_raw(runtime):
    session = runtime.open_session().init()
    assert session.read("X") == 0
    session.write("X", 10)
    assert session.read("X") == 10
    session.finish()


def test_duplicate_write_anomaly_on_retry():
    """The motivating anomaly (Section 1): a crash after the write, then a
    retry, applies the increment twice under the unsafe protocol."""
    runtime = LocalRuntime(
        SystemConfig(seed=3), protocol="unsafe",
        # Crash on the first attempt *after* the DB write took effect
        # (checkpoints: read pre, write pre, write post).
        crash_policy=ScriptedCrashes({1: 3}),
    )
    runtime.populate("X", 0)

    def increment(ctx, inp):
        value = ctx.read("X")
        ctx.write("X", value + 1)
        return value + 1

    runtime.register("increment", increment)
    result = runtime.invoke("increment")
    assert result.attempts == 2
    # Exactly-once would leave 1; unsafe leaves 2.
    assert runtime.backend.kv.get("X") == 2


def test_logged_protocols_prevent_the_same_anomaly(protocol_name):
    runtime = make_runtime(
        protocol_name, crash_policy=ScriptedCrashes({1: 8})
    )
    runtime.populate("X", 0)

    def increment(ctx, inp):
        value = ctx.read("X")
        ctx.write("X", value + 1)
        return value + 1

    runtime.register("increment", increment)
    result = runtime.invoke("increment")
    probe = runtime.open_session().init()
    assert probe.read("X") == 1
    probe.finish()


def test_unsafe_invoke_spawns_fresh_children(runtime):
    calls = []

    def child(ctx, inp):
        calls.append(ctx.env.instance_id)
        return "ok"

    runtime.register("child", child)
    runtime.register(
        "parent", lambda ctx, inp: ctx.invoke("child")
    )
    runtime.invoke("parent")
    runtime.invoke("parent")
    assert len(set(calls)) == 2  # every invocation gets a fresh child id
