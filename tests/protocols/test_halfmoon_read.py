"""Unit tests for the Halfmoon-read protocol (Figure 5, Section 4.1)."""

import pytest

from repro import LocalRuntime, ProtocolConfig, SystemConfig
from repro.errors import KeyMissingError
from repro.runtime import Cost, instance_tag, object_tag
from tests.conftest import make_runtime


@pytest.fixture
def runtime():
    rt = make_runtime("halfmoon-read")
    rt.populate("X", "x0")
    rt.populate("Y", "y0")
    return rt


def test_reads_are_log_free(runtime):
    """A read appends nothing: the log's record count is unchanged."""
    session = runtime.open_session().init()
    appends_before = runtime.backend.log.append_count
    assert session.read("X") == "x0"
    assert session.read("Y") == "y0"
    assert runtime.backend.log.append_count == appends_before
    session.finish()


def test_read_does_not_advance_step(runtime):
    session = runtime.open_session().init()
    session.read("X")
    assert session.env.step == 0  # log-free reads occupy no step


def test_write_creates_version_and_commit_record(runtime):
    session = runtime.open_session().init()
    session.write("X", "x1")
    records = runtime.backend.log.read_stream(object_tag("X"))
    assert records[-1]["op"] == "write"
    version = records[-1]["version"]
    assert runtime.backend.mv.read_version("X", version) == "x1"
    session.finish()


def test_write_logs_twice_in_prototype_mode(runtime):
    """Aligned with Boki: one intent record plus one commit record."""
    session = runtime.open_session().init()
    before = runtime.backend.log.append_count
    session.write("X", "x1")
    assert runtime.backend.log.append_count == before + 2
    steps = [
        r["op"] for r in runtime.backend.log.read_stream(
            instance_tag(session.env.instance_id)
        )
    ]
    assert steps == ["init", "write-intent", "write"]


def test_deterministic_version_mode_logs_once():
    config = SystemConfig(
        protocol=ProtocolConfig(align_write_logging_with_boki=False)
    )
    runtime = LocalRuntime(config, protocol="halfmoon-read")
    runtime.populate("X", "x0")
    session = runtime.open_session().init()
    before = runtime.backend.log.append_count
    session.write("X", "x1")
    assert runtime.backend.log.append_count == before + 1
    record = runtime.backend.log.read_stream(object_tag("X"))[-1]
    # Deterministic version: instance id + step.
    assert record["version"] == f"{session.env.instance_id}.1"
    session.finish()


def test_read_seeks_backward_from_cursor(runtime):
    """The Figure 4 guarantee: a stale cursor pins a stale snapshot."""
    reader = runtime.open_session().init()
    writer = runtime.open_session().init()
    writer.write("X", "newer")
    # The reader's cursorTS predates the write: it must not see it.
    assert reader.read("X") == "x0"
    # After the reader logs something (a write), its cursor advances.
    reader.write("Y", "y1")
    assert reader.read("X") == "newer"
    reader.finish()
    writer.finish()


def test_writes_visible_to_later_ssfs(runtime):
    first = runtime.open_session().init()
    first.write("X", "x1")
    first.finish()
    second = runtime.open_session().init()
    assert second.read("X") == "x1"
    second.finish()


def test_read_of_never_written_key_raises(runtime):
    session = runtime.open_session().init()
    with pytest.raises(KeyMissingError):
        session.read("unknown-key")


def test_commit_logging_happens_after_dbwrite(runtime):
    """The commit record must never expose a version that is not yet in
    the store (Section 4.1 mandates logging after DBWrite)."""
    from repro.errors import CrashError

    # Crash exactly between DBWrite and the commit append: the version
    # exists but is not exposed; a concurrent reader sees the old value.
    # Checkpoint order within write(): intent cond_append, db_write_version
    # (pre/post), commit cond_append — so the crash targets the *second*
    # cond_append after arming.
    state = {"armed": False, "cond_appends": 0}

    def hook(label):
        if not state["armed"]:
            return
        if label == "log_cond_append:pre":
            state["cond_appends"] += 1
            if state["cond_appends"] == 2:
                raise CrashError()

    writer = runtime.open_session(fault_hook=hook).init()
    state["armed"] = True  # arm after init's own append
    with pytest.raises(CrashError):
        writer.write("X", "x1")
    # The version was installed in the store but never committed.
    assert len(runtime.backend.mv.list_versions("X")) == 2

    reader = runtime.open_session().init()
    assert reader.read("X") == "x0"  # uncommitted write invisible
    reader.finish()

    # The replay commits the same version exactly once.
    replay = writer.replay().init()
    replay.write("X", "x1")
    replay.finish()
    probe = runtime.open_session().init()
    assert probe.read("X") == "x1"
    versions = runtime.backend.mv.list_versions("X")
    assert len(versions) == 2  # genesis + exactly one new version


def test_replayed_write_skips_db_and_log(runtime):
    session = runtime.open_session().init()
    session.write("X", "x1")
    writes_before = runtime.backend.kv.write_count
    appends_before = runtime.backend.log.append_count

    replay = session.replay().init()
    replay.write("X", "x1")
    assert runtime.backend.kv.write_count == writes_before
    assert runtime.backend.log.append_count == appends_before
    session.finish()


def test_version_numbers_unordered_but_log_ordered(runtime):
    """Version numbers are opaque pointers; the write log is the order."""
    for value in ["a", "b", "c"]:
        session = runtime.open_session().init()
        session.write("X", value)
        session.finish()
    records = runtime.backend.log.read_stream(object_tag("X"))
    ordered_values = [
        runtime.backend.mv.read_version("X", r["version"])
        for r in records
    ]
    assert ordered_values == ["x0", "a", "b", "c"]


def test_snapshot_reads_within_one_ssf_are_stable(runtime):
    """Two reads of the same object with no interleaved logging return
    the same value even if another SSF wrote in between (repeatable
    reads at a fixed cursor)."""
    reader = runtime.open_session().init()
    assert reader.read("X") == "x0"
    other = runtime.open_session().init()
    other.write("X", "x1")
    other.finish()
    assert reader.read("X") == "x0"
    reader.finish()
