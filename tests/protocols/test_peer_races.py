"""Peer-instance races (Section 5.1).

Several live instances of the *same* SSF invocation (e.g. a timed-out but
alive instance plus its replacement) race to execute the same steps.
``logCondAppend`` guarantees exactly one wins each step; losers adopt the
winner's record and continue with identical state.
"""

import pytest

from repro.runtime import instance_tag
from tests.conftest import make_runtime


@pytest.fixture
def runtime(protocol_name):
    rt = make_runtime(protocol_name)
    rt.populate("X", "x0")
    rt.populate("Y", "y0")
    return rt


def peers(runtime, n=2):
    """Open n concurrent instances sharing one instance id."""
    instance_id = runtime.new_instance_id()
    return [
        runtime.open_session(instance_id=instance_id).init()
        for _ in range(n)
    ]


def test_peers_share_step_log(runtime):
    a, b = peers(runtime)
    assert a.env.instance_id == b.env.instance_id
    assert a.env.init_cursor_ts == b.env.init_cursor_ts


def test_only_one_init_record(runtime):
    a, b = peers(runtime)
    records = runtime.backend.log.read_stream(
        instance_tag(a.env.instance_id)
    )
    assert [r["op"] for r in records] == ["init"]
    a.finish()


def test_racing_writes_produce_single_effect(runtime):
    a, b = peers(runtime)
    a.write("X", "value")
    appends_after_a = runtime.backend.log.append_count
    b.write("X", "value")  # loses every logged step, adopts a's records
    # The loser appended nothing new.
    assert runtime.backend.log.append_count == appends_after_a
    # Both peers agree on the cursor afterwards.
    assert a.env.cursor_ts == b.env.cursor_ts
    a.finish()


def test_racing_reads_agree(runtime):
    a, b = peers(runtime)
    va = a.read("X")
    # Interleave: another SSF changes X before the peer's read.
    other = runtime.open_session().init()
    other.write("X", "changed")
    other.finish()
    vb = b.read("X")
    # Idempotence across peers: both instances observe the same value.
    assert va == vb == "x0"
    a.finish()


def test_interleaved_step_race(runtime):
    """Peers alternate steps; each step has exactly one log record and
    both peers end with identical state."""
    a, b = peers(runtime)
    a.read("X")
    b.read("X")      # adopts
    b.write("Y", "y1")
    a.write("Y", "y1")  # adopts
    a.read("Y")
    b.read("Y")
    assert a.env.cursor_ts == b.env.cursor_ts
    assert a.env.step == b.env.step
    a.finish()


def test_three_way_race(runtime):
    a, b, c = peers(runtime, 3)
    for session in (a, b, c):
        session.read("X")
        session.write("X", "final")
    records = runtime.backend.log.read_stream(
        instance_tag(a.env.instance_id)
    )
    steps = [r.step for r in records]
    assert steps == sorted(set(steps)), "duplicate step records"
    probe = runtime.open_session().init()
    assert probe.read("X") == "final"
    probe.finish()


def test_peer_race_on_invoke(runtime):
    executed = []

    def child(ctx, inp):
        executed.append(ctx.env.instance_id)
        return "done"

    runtime.register("child", child)
    a, b = peers(runtime)
    r1 = a.invoke("child")
    r2 = b.invoke("child")  # must adopt, not re-invoke a fresh child
    assert r1 == r2 == "done"
    assert len(set(executed)) == 1
    a.finish()
