"""Tests for linearizable sync (Section 4.4) and table scans (Section 4.1
remark)."""

import pytest

from repro.runtime import instance_tag
from tests.conftest import make_runtime


class TestSync:
    def test_sync_advances_cursor_to_tail(self, protocol_name):
        runtime = make_runtime(protocol_name)
        runtime.populate("X", "x0")
        session = runtime.open_session().init()
        # Another SSF logs something, advancing the global tail.
        other = runtime.open_session().init()
        other.write("X", "newer")
        other.finish()
        assert session.env.cursor_ts < runtime.backend.log.tail_seqnum
        session.sync()
        assert session.env.cursor_ts == runtime.backend.log.tail_seqnum
        session.finish()

    def test_sync_makes_halfmoon_read_linearizable(self):
        """Without sync, HM-read may serve a stale snapshot; after sync it
        must observe every previously completed write."""
        runtime = make_runtime("halfmoon-read")
        runtime.populate("X", "x0")
        reader = runtime.open_session().init()
        writer = runtime.open_session().init()
        writer.write("X", "fresh")
        writer.finish()
        assert reader.read("X") == "x0"      # sequential, not real-time
        reader.sync()
        assert reader.read("X") == "fresh"   # linearizable after sync
        reader.finish()

    def test_sync_is_replay_stable(self, protocol_name):
        runtime = make_runtime(protocol_name)
        runtime.populate("X", "x0")
        session = runtime.open_session().init()
        session.sync()
        cursor = session.env.cursor_ts
        appends = runtime.backend.log.append_count
        replay = session.replay().init()
        replay.sync()
        assert replay.env.cursor_ts == cursor
        assert runtime.backend.log.append_count == appends
        session.finish()

    def test_sync_appears_in_step_log(self, protocol_name):
        runtime = make_runtime(protocol_name)
        session = runtime.open_session().init()
        session.sync()
        ops = [
            r["op"] for r in runtime.backend.log.read_stream(
                instance_tag(session.env.instance_id)
            )
        ]
        assert ops == ["init", "sync"]
        session.finish()

    def test_unsafe_sync_is_noop(self):
        runtime = make_runtime("unsafe")
        session = runtime.open_session().init()
        session.sync()
        assert runtime.backend.log.append_count == 0
        session.finish()


class TestScan:
    @pytest.fixture
    def runtime(self, protocol_name):
        rt = make_runtime(protocol_name)
        for i in range(4):
            rt.populate(f"acct{i}", i * 100, table="accounts")
        rt.populate("unrelated", 1)
        return rt

    def test_scan_returns_all_rows(self, runtime):
        session = runtime.open_session().init()
        rows = session.scan("accounts")
        assert rows == {f"acct{i}": i * 100 for i in range(4)}
        session.finish()

    def test_scan_unknown_table_empty(self, runtime):
        session = runtime.open_session().init()
        assert session.scan("nope") == {}
        session.finish()

    def test_scan_sees_committed_updates(self, runtime):
        writer = runtime.open_session().init()
        writer.write("acct0", 999)
        writer.finish()
        reader = runtime.open_session().init()
        assert reader.scan("accounts")["acct0"] == 999
        reader.finish()

    def test_halfmoon_read_scan_is_a_snapshot(self):
        """Under HM-read, a scan resolves every row at the same cursorTS:
        concurrent writes do not tear the snapshot."""
        runtime = make_runtime("halfmoon-read")
        for i in range(3):
            runtime.populate(f"row{i}", 0, table="t")
        reader = runtime.open_session().init()
        first = reader.scan("t")
        # Concurrent writer changes every row.
        writer = runtime.open_session().init()
        for i in range(3):
            writer.write(f"row{i}", 777)
        writer.finish()
        second = reader.scan("t")
        assert first == second == {f"row{i}": 0 for i in range(3)}
        reader.finish()

    def test_scan_usable_from_registered_function(self, runtime):
        runtime.register(
            "total", lambda ctx, inp: sum(ctx.scan("accounts").values())
        )
        assert runtime.invoke("total").output == 600
