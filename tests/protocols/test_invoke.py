"""Unit tests for workflow invocation (Figure 5's Invoke, shared logic)."""

import pytest

from repro import LocalRuntime, ScriptedCrashes, SystemConfig
from repro.runtime import instance_tag
from tests.conftest import make_runtime


def build_workflow(runtime):
    runtime.populate("total", 0)
    calls = {"child": 0}

    def child(ctx, inp):
        calls["child"] += 1
        value = ctx.read("total")
        ctx.write("total", value + inp)
        return value + inp

    def parent(ctx, inp):
        first = ctx.invoke("child", inp)
        second = ctx.invoke("child", inp * 10)
        return (first, second)

    runtime.register("child", child)
    runtime.register("parent", parent)
    return calls


def test_workflow_composition(runtime):
    build_workflow(runtime)
    result = runtime.invoke("parent", 1)
    assert result.output == (1, 11)
    probe = runtime.open_session().init()
    assert probe.read("total") == 11
    probe.finish()


def test_invoke_logs_intent_and_result(runtime):
    build_workflow(runtime)
    result = runtime.invoke("parent", 1)
    ops = [
        r["op"] for r in runtime.backend.log.read_stream(
            instance_tag(result.instance_id)
        )
    ]
    assert ops == [
        "init", "invoke-intent", "invoke", "invoke-intent", "invoke",
    ]


def test_child_latency_charged_to_parent(runtime):
    build_workflow(runtime)
    result = runtime.invoke("parent", 1)
    # The parent's latency must exceed the children's bare operations.
    assert result.latency_ms > 5.0


def test_parent_crash_does_not_duplicate_children(protocol_name):
    """Crash the parent between the two invokes: the completed child must
    not run again, and the state reflects exactly one increment each."""
    calls_per_checkpoint = {}
    # Sweep the parent's crash point over a wide range of checkpoints.
    for checkpoint in range(1, 40):
        runtime = make_runtime(protocol_name)
        calls = build_workflow(runtime)
        # Only the parent instance should crash, so filter on it: the
        # parent is the only top-level invocation (children have ids from
        # the parent's intent records, but the policy sees them too).
        # Instead: crash globally at attempt 1; children run under
        # attempt 1 of their own invocations and may crash too, which is
        # still a valid execution — exactly-once must hold regardless.
        runtime.crash_policy = ScriptedCrashes({1: checkpoint})
        result = runtime.invoke("parent", 1)
        assert result.output == (1, 11), f"checkpoint {checkpoint}"
        probe = runtime.open_session().init()
        assert probe.read("total") == 11, f"checkpoint {checkpoint}"
        probe.finish()
        calls_per_checkpoint[checkpoint] = calls["child"]
    # The child body may re-execute (replay), but its *effects* were
    # verified exactly-once above.
    assert max(calls_per_checkpoint.values()) >= 1


def test_replayed_parent_skips_completed_invokes(runtime):
    calls = build_workflow(runtime)
    result = runtime.invoke("parent", 1)
    executed_first_time = calls["child"]

    # Manually replay the whole parent (simulating a zombie retry).
    session = runtime.open_session(
        instance_id=result.instance_id
    ).init()
    first = session.invoke("child", 1)
    second = session.invoke("child", 10)
    assert (first, second) == (1, 11)
    assert calls["child"] == executed_first_time  # bodies not re-run
    session.finish()


def test_nested_workflows(runtime):
    runtime.populate("total", 0)

    def leaf(ctx, inp):
        value = ctx.read("total")
        ctx.write("total", value + 1)
        return value + 1

    def mid(ctx, inp):
        return ctx.invoke("leaf")

    def top(ctx, inp):
        a = ctx.invoke("mid")
        b = ctx.invoke("mid")
        return (a, b)

    runtime.register("leaf", leaf)
    runtime.register("mid", mid)
    runtime.register("top", top)
    result = runtime.invoke("top")
    assert result.output == (1, 2)


def test_callee_ids_stable_across_replay(runtime):
    build_workflow(runtime)
    result = runtime.invoke("parent", 1)
    records = runtime.backend.log.read_stream(
        instance_tag(result.instance_id)
    )
    callees = [
        r["callee"] for r in records if r["op"] == "invoke-intent"
    ]
    assert len(callees) == 2
    assert callees[0] != callees[1]
    # A replay reuses the same callee ids (pinned by the intent records).
    session = runtime.open_session(instance_id=result.instance_id).init()
    session.invoke("child", 1)
    records_after = runtime.backend.log.read_stream(
        instance_tag(result.instance_id)
    )
    callees_after = [
        r["callee"] for r in records_after if r["op"] == "invoke-intent"
    ]
    assert callees_after == callees
    session.finish()
