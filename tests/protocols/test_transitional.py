"""Unit tests for the transitional protocol (Section 5.2)."""

import pytest

from repro import LocalRuntime, SystemConfig
from repro.runtime import instance_tag, object_tag
from tests.conftest import make_runtime


@pytest.fixture
def runtime():
    # A runtime whose *default* protocol is transitional, so sessions use
    # it directly without a switch window.
    rt = LocalRuntime(SystemConfig(seed=11), protocol="transitional")
    rt.populate("X", "x0")
    rt.populate("Y", "y0")
    return rt


def test_write_updates_both_schemas(runtime):
    session = runtime.open_session().init()
    session.write("X", "x1")
    # Single-version LATEST slot updated...
    assert runtime.backend.kv.get("X") == "x1"
    # ...and a separate version committed through the write log.
    record = runtime.backend.log.read_stream(object_tag("X"))[-1]
    assert runtime.backend.mv.read_version(
        "X", record["version"]
    ) == "x1"
    session.finish()


def test_reads_and_writes_all_logged(runtime):
    session = runtime.open_session().init()
    before = runtime.backend.log.append_count
    session.read("X")
    session.write("X", "x1")
    # read record + write intent + write commit = 3 appends.
    assert runtime.backend.log.append_count == before + 3
    session.finish()


def test_read_prefers_fresher_latest_slot(runtime):
    """When a Halfmoon-write style writer updated only the LATEST slot,
    the transitional read must pick it over the stale version."""
    hmw = make_runtime("halfmoon-write", enable_switching=False)
    # Reuse the same backend so both protocols touch the same state.
    hmw.backend = runtime.backend
    hmw_session = hmw.open_session().init()
    hmw_session.read("Y")  # advance cursor so the write wins
    hmw_session.write("X", "only-latest")
    hmw_session.finish()

    session = runtime.open_session().init()
    assert session.read("X") == "only-latest"
    session.finish()


def test_read_prefers_fresher_versioned_world(runtime):
    hmr = make_runtime("halfmoon-read")
    hmr.backend = runtime.backend
    hmr_session = hmr.open_session().init()
    hmr_session.write("X", "only-versioned")
    hmr_session.finish()

    session = runtime.open_session().init()
    assert session.read("X") == "only-versioned"
    session.finish()


def test_replay_is_idempotent(runtime):
    session = runtime.open_session().init()
    session.read("X")
    session.write("X", "x1")
    appends = runtime.backend.log.append_count
    writes = runtime.backend.kv.write_count
    replay = session.replay().init()
    assert replay.read("X") == "x0"
    replay.write("X", "x1")
    assert runtime.backend.log.append_count == appends
    assert runtime.backend.kv.write_count == writes
    replay.finish()


def test_replayed_write_does_not_clobber_newer(runtime):
    session = runtime.open_session().init()
    session.read("Y")
    session.write("X", "mine")
    newer = runtime.open_session().init()
    newer.read("Y")
    newer.write("X", "newer")
    newer.finish()
    replay = session.replay().init()
    replay.read("Y")
    replay.write("X", "mine")
    assert runtime.backend.kv.get("X") == "newer"
    replay.finish()
