"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro import LocalRuntime, SystemConfig
from repro.config import ClusterConfig, FailureConfig, GCConfig

PROTOCOLS = ("boki", "halfmoon-read", "halfmoon-write")
ALL_SYSTEMS = ("unsafe",) + PROTOCOLS


@pytest.fixture
def config() -> SystemConfig:
    return SystemConfig(seed=1234)


@pytest.fixture(params=PROTOCOLS)
def protocol_name(request) -> str:
    """Parametrises a test over the three logged protocols."""
    return request.param


def make_runtime(protocol: str = "halfmoon-read", seed: int = 1234,
                 **kwargs) -> LocalRuntime:
    return LocalRuntime(SystemConfig(seed=seed), protocol=protocol,
                        **kwargs)


def deterministic_config(seed: int = 1234) -> SystemConfig:
    """A config whose latency distributions are degenerate (p99 == median),
    so every service call costs exactly its median — useful for tests that
    compare latencies structurally."""
    from repro.config import LatencyConfig

    lat = LatencyConfig()
    deterministic = LatencyConfig(
        log_append_p99_ms=lat.log_append_median_ms,
        db_read_p99_ms=lat.db_read_median_ms,
        db_write_p99_ms=lat.db_write_median_ms,
        log_read_cached_p99_ms=lat.log_read_cached_median_ms,
        log_read_miss_p99_ms=lat.log_read_miss_median_ms,
        invoke_overhead_p99_ms=lat.invoke_overhead_median_ms,
    )
    return SystemConfig(seed=seed, latency=deterministic)


@pytest.fixture
def runtime(protocol_name) -> LocalRuntime:
    return make_runtime(protocol_name)
