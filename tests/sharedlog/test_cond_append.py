"""Unit tests for logCondAppend (Section 5.1)."""

import pytest

from repro.errors import ConditionalAppendError, LogError, ProtocolError
from repro.sharedlog import SharedLog


@pytest.fixture
def log():
    return SharedLog()


def test_append_at_expected_offset_succeeds(log):
    s0 = log.cond_append(["i"], {"step": 0}, cond_tag="i", cond_pos=0)
    s1 = log.cond_append(["i"], {"step": 1}, cond_tag="i", cond_pos=1)
    assert s1 > s0
    assert [r["step"] for r in log.read_stream("i")] == [0, 1]


def test_conflict_reports_existing_seqnum(log):
    s0 = log.cond_append(["i"], {"who": "winner"}, "i", 0)
    with pytest.raises(ConditionalAppendError) as excinfo:
        log.cond_append(["i"], {"who": "loser"}, "i", 0)
    assert excinfo.value.existing_seqnum == s0
    # The losing append left no trace.
    assert len(log.read_stream("i")) == 1
    assert log.read_stream("i")[0]["who"] == "winner"


def test_gap_offset_is_a_protocol_error(log):
    log.cond_append(["i"], {}, "i", 0)
    with pytest.raises(ProtocolError):
        log.cond_append(["i"], {}, "i", 5)  # skipped steps 1-4


def test_cond_tag_must_be_in_tags(log):
    with pytest.raises(LogError):
        log.cond_append(["a"], {}, cond_tag="b", cond_pos=0)


def test_cond_append_with_extra_tags_lands_in_all_streams(log):
    log.cond_append(["i", "k"], {"v": 1}, "i", 0)
    assert len(log.read_stream("i")) == 1
    assert len(log.read_stream("k")) == 1


def test_offsets_remain_stable_after_trim(log):
    """Trimmed prefixes keep offsets stable: condPos semantics survive GC."""
    for step in range(3):
        log.cond_append(["i"], {"step": step}, "i", step)
    first_two = log.read_stream("i")[1].seqnum
    log.trim("i", first_two)  # removes offsets 0 and 1
    # Appending at offset 3 (the next logical position) still works.
    log.cond_append(["i"], {"step": 3}, "i", 3)
    # Appending at an already-taken (but trimmed) offset fails loudly.
    with pytest.raises(ConditionalAppendError):
        log.cond_append(["i"], {"step": 2}, "i", 2)


def test_conflict_on_trimmed_offset_raises_trimmed(log):
    from repro.errors import TrimmedError

    for step in range(2):
        log.cond_append(["i"], {"step": step}, "i", step)
    log.trim("i", log.tail_seqnum)
    with pytest.raises(TrimmedError):
        log.cond_append(["i"], {"step": 0}, "i", 0)


def test_interleaved_streams_do_not_interfere(log):
    log.cond_append(["i1"], {"s": 0}, "i1", 0)
    log.cond_append(["i2"], {"s": 0}, "i2", 0)
    log.cond_append(["i1"], {"s": 1}, "i1", 1)
    log.cond_append(["i2"], {"s": 1}, "i2", 1)
    assert [r["s"] for r in log.read_stream("i1")] == [0, 1]
    assert [r["s"] for r in log.read_stream("i2")] == [0, 1]
