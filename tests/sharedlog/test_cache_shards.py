"""Shard-aware record cache: per-shard invalidation alongside the
crash-induced node-partition eviction from the recovery layer."""

from repro.config import SystemConfig
from repro.runtime import LocalRuntime
from repro.sharedlog import RecordCache


def test_entries_remember_their_home_shard():
    cache = RecordCache(capacity=8)
    cache.insert(1, shard=0)
    cache.insert(2, shard=3)
    assert cache.shard_of(1) == 0
    assert cache.shard_of(2) == 3
    assert cache.shard_census() == {0: 1, 3: 1}
    # Re-insert can re-home (a record re-read after re-placement).
    cache.insert(1, shard=2)
    assert cache.shard_of(1) == 2


def test_evict_shard_drops_exactly_that_shards_entries():
    cache = RecordCache(capacity=64)
    for seqnum in range(10):
        cache.insert(seqnum, shard=seqnum % 2)
    assert cache.evict_shard(0) == 5
    assert len(cache) == 5
    assert all(cache.shard_of(s) == 1 for s in range(1, 10, 2))
    assert cache.evict_shard(0) == 0  # idempotent
    assert cache.evict_shard(1) == 5
    assert len(cache) == 0


def test_shard_and_partition_eviction_are_independent_axes():
    """evict_partition slices by seqnum hash (function-node crash);
    evict_shard slices by home shard (storage-shard loss).  The two must
    not interfere: partition eviction can drop records of any shard."""
    cache = RecordCache(capacity=64)
    for seqnum in range(12):
        cache.insert(seqnum, shard=seqnum % 3)
    # Node 0 of 4 crashes: seqnums 0, 4, 8 go (shards 0, 1, 2).
    assert cache.evict_partition(0, 4) == 3
    assert not cache.contains(4)
    # Shard 0 goes: remaining seqnums with home shard 0 (3, 6, 9).
    assert cache.evict_shard(0) == 3
    assert not cache.contains(3)
    assert cache.contains(5)  # shard 2, node 1 — untouched by both


def test_default_insert_is_single_shard():
    cache = RecordCache(capacity=4)
    cache.insert(7)
    assert cache.shard_of(7) == 0
    assert cache.lookup(7) is True
    # Misses insert at the caller's shard.
    assert cache.lookup(8, shard=2) is False
    assert cache.shard_of(8) == 2


def test_lru_eviction_unchanged_by_shard_tracking():
    cache = RecordCache(capacity=3)
    for seqnum in (1, 2, 3):
        cache.insert(seqnum, shard=seqnum)
    cache.insert(4, shard=0)  # evicts 1 (LRU)
    assert not cache.contains(1)
    assert cache.contains(2)


def test_crash_partition_loss_path_stays_shard_aware():
    """The recovery-layer path from the node-crash PR: a crashed node's
    cache slice is evicted by seqnum partition, and the census over home
    shards shrinks accordingly on a sharded plane."""
    config = SystemConfig(seed=9).with_storage_plane(
        log_shards=4, kv_partitions=2
    )
    runtime = LocalRuntime(config, protocol="halfmoon-write")
    runtime.register("rw", lambda ctx, inp: ctx.write(
        inp["key"], inp["value"]
    ))
    for i in range(8):
        runtime.populate(f"key-{i}", 0)
        runtime.invoke("rw", {"key": f"key-{i}", "value": i})
    backend = runtime.backend
    census_before = backend.cache.shard_census()
    assert sum(census_before.values()) == len(backend.cache)
    assert len(census_before) > 1  # records homed on several shards
    evicted = backend.drop_node_cache(0, 4)
    assert evicted > 0
    census_after = backend.cache.shard_census()
    assert sum(census_after.values()) == len(backend.cache)
    assert sum(census_after.values()) == (
        sum(census_before.values()) - evicted
    )
