"""Unit tests for the function-node record cache."""

import pytest

from repro.errors import ConfigError
from repro.sharedlog import RecordCache


def test_capacity_must_be_positive():
    with pytest.raises(ConfigError):
        RecordCache(0)


def test_lookup_miss_then_hit():
    cache = RecordCache(4)
    assert cache.lookup(1) is False   # miss, now resident
    assert cache.lookup(1) is True    # hit
    assert cache.hits == 1
    assert cache.misses == 1
    assert cache.hit_ratio == 0.5


def test_insert_makes_resident():
    cache = RecordCache(4)
    cache.insert(7)
    assert cache.lookup(7) is True


def test_lru_eviction_order():
    cache = RecordCache(2)
    cache.insert(1)
    cache.insert(2)
    cache.insert(3)  # evicts 1
    assert cache.lookup(2) is True
    assert cache.lookup(1) is False


def test_lookup_refreshes_recency():
    cache = RecordCache(2)
    cache.insert(1)
    cache.insert(2)
    cache.lookup(1)      # 1 is now most recent
    cache.insert(3)      # evicts 2
    assert cache.lookup(1) is True
    assert cache.lookup(2) is False


def test_invalidate_and_clear():
    cache = RecordCache(4)
    cache.insert(1)
    cache.invalidate(1)
    assert cache.lookup(1) is False
    cache.insert(2)
    cache.clear()
    assert len(cache) == 0


def test_reinsert_does_not_grow():
    cache = RecordCache(4)
    cache.insert(1)
    cache.insert(1)
    assert len(cache) == 1


def test_hit_ratio_empty_cache():
    assert RecordCache().hit_ratio == 0.0
