"""Unit tests for LogRecord."""

import pytest

from repro.sharedlog import LogRecord


def test_dict_style_access():
    record = LogRecord(5, ("a",), {"op": "write", "version": "v1"})
    assert record["seqnum"] == 5
    assert record["op"] == "write"
    assert record["version"] == "v1"


def test_get_with_default():
    record = LogRecord(5, ("a",), {"op": "read"})
    assert record.get("missing") is None
    assert record.get("missing", 7) == 7
    assert record.get("seqnum") == 5


def test_missing_key_raises():
    record = LogRecord(1, ("a",), {})
    with pytest.raises(KeyError):
        _ = record["nope"]


def test_data_is_frozen():
    record = LogRecord(1, ("a",), {"op": "read"})
    with pytest.raises(TypeError):
        record.data["op"] = "write"


def test_source_dict_mutation_does_not_leak():
    source = {"op": "read"}
    record = LogRecord(1, ("a",), source)
    source["op"] = "write"
    assert record["op"] == "read"


def test_op_and_step_properties():
    record = LogRecord(1, ("a",), {"op": "write", "step": 3})
    assert record.op == "write"
    assert record.step == 3
    bare = LogRecord(2, ("a",), {})
    assert bare.op == "?"
    assert bare.step == -1


def test_repr_mentions_fields():
    record = LogRecord(9, ("t",), {"op": "init"})
    assert "seqnum=9" in repr(record)
    assert "op='init'" in repr(record)
