"""Unit tests for the shared log: appends, sub-streams, reads, trim."""

import pytest

from repro.errors import LogError, TrimmedError
from repro.sharedlog import SharedLog


@pytest.fixture
def log():
    return SharedLog(meta_bytes=48)


def test_seqnums_monotonically_increase(log):
    seqs = [log.append(["t"], {"i": i}) for i in range(5)]
    assert seqs == sorted(seqs)
    assert len(set(seqs)) == 5
    assert log.tail_seqnum == seqs[-1]
    assert log.next_seqnum == seqs[-1] + 1


def test_append_requires_tags(log):
    with pytest.raises(LogError):
        log.append([], {"x": 1})


def test_read_prev_returns_latest_at_or_before(log):
    s1 = log.append(["k"], {"v": 1})
    s2 = log.append(["k"], {"v": 2})
    assert log.read_prev("k", s2)["v"] == 2
    assert log.read_prev("k", s2 - 1)["v"] == 1
    assert log.read_prev("k", s1)["v"] == 1


def test_read_prev_none_before_first_record(log):
    s1 = log.append(["k"], {"v": 1})
    assert log.read_prev("k", s1 - 1) is None
    assert log.read_prev("unknown", 100) is None


def test_read_next_returns_earliest_at_or_after(log):
    s1 = log.append(["k"], {"v": 1})
    s2 = log.append(["k"], {"v": 2})
    assert log.read_next("k", s1)["v"] == 1
    assert log.read_next("k", s1 + 1)["v"] == 2
    assert log.read_next("k", s2 + 1) is None
    assert log.read_next("unknown", 0) is None


def test_substreams_share_total_order(log):
    log.append(["a"], {"v": 1})
    log.append(["b"], {"v": 2})
    log.append(["a", "b"], {"v": 3})
    a = [r["v"] for r in log.read_stream("a")]
    b = [r["v"] for r in log.read_stream("b")]
    assert a == [1, 3]
    assert b == [2, 3]


def test_read_stream_with_min_seqnum(log):
    seqs = [log.append(["s"], {"i": i}) for i in range(4)]
    records = log.read_stream("s", min_seqnum=seqs[2])
    assert [r["i"] for r in records] == [2, 3]


def test_multi_tag_record_counted_once_in_storage(log):
    log.append(["a", "b", "c"], {"v": 1}, payload_bytes=100)
    assert log.storage_bytes() == 48 + 100
    assert log.live_record_count == 1


def test_trim_removes_prefix(log):
    seqs = [log.append(["s"], {"i": i}) for i in range(5)]
    removed = log.trim("s", seqs[2])
    assert removed == 3
    assert [r["i"] for r in log.read_stream("s")] == [3, 4]


def test_trim_unknown_tag_is_noop(log):
    assert log.trim("nope", 100) == 0


def test_trim_frees_storage_only_when_all_tags_trimmed(log):
    log.append(["a", "b"], {"v": 1}, payload_bytes=10)
    before = log.storage_bytes()
    log.trim("a", log.tail_seqnum)
    assert log.storage_bytes() == before  # still live via tag "b"
    log.trim("b", log.tail_seqnum)
    assert log.storage_bytes() == 0
    assert log.live_record_count == 0


def test_read_prev_into_trimmed_region_raises(log):
    seqs = [log.append(["s"], {"i": i}) for i in range(3)]
    log.trim("s", seqs[1])
    with pytest.raises(TrimmedError):
        log.read_prev("s", seqs[0])
    # Reads at or after the surviving record still work.
    assert log.read_prev("s", seqs[2])["i"] == 2


def test_stream_length_includes_trimmed(log):
    seqs = [log.append(["s"], {"i": i}) for i in range(4)]
    log.trim("s", seqs[1])
    assert log.stream_length("s") == 4
    assert log.stream_length("other") == 0


def test_storage_listener_fires_on_append_and_trim(log):
    observed = []
    log.add_storage_listener(observed.append)
    log.append(["s"], {}, payload_bytes=10)
    log.trim("s", log.tail_seqnum)
    assert observed == [58, 0]


def test_append_and_trim_counts(log):
    for i in range(3):
        log.append(["s"], {"i": i})
    log.trim("s", log.tail_seqnum)
    assert log.append_count == 3
    assert log.trim_count == 3


def test_stream_tags_lists_all(log):
    log.append(["x", "y"], {})
    assert set(log.stream_tags()) == {"x", "y"}
