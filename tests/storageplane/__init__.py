"""Storage-plane test package."""
