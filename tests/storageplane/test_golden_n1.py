"""Golden-run equivalence: at a 1×1 topology the sharded backend is
bit-identical to the seed single-node plane — same seqnums, same latency
samples (RNG streams consumed in the same order), same storage traces,
same metric values.  ``repro.protocols`` behaviour must not change."""

import pytest

from repro.config import SystemConfig
from repro.harness import SimPlatform, run_overhead_point
from repro.workloads import MixedRatioWorkload


def _sharded_1x1(config: SystemConfig) -> SystemConfig:
    return config.with_storage_plane(
        log_shards=1, kv_partitions=1, backend="sharded"
    )


def _run(config, protocol="halfmoon-read", rate=120.0):
    platform = SimPlatform(
        MixedRatioWorkload(0.5, num_keys=300), protocol, config
    )
    result = platform.run(rate, 2_500.0, warmup_ms=500.0)
    return platform, result


@pytest.mark.parametrize("protocol", ["boki", "halfmoon-read",
                                      "halfmoon-write"])
def test_des_run_bit_identical_at_1x1(protocol):
    config = SystemConfig(seed=77)
    p_single, r_single = _run(config, protocol)
    p_sharded, r_sharded = _run(_sharded_1x1(config), protocol)
    assert r_single.completed == r_sharded.completed
    assert r_single.median_ms == r_sharded.median_ms
    assert r_single.p99_ms == r_sharded.p99_ms
    assert r_single.avg_log_bytes == r_sharded.avg_log_bytes
    assert r_single.avg_db_bytes == r_sharded.avg_db_bytes
    assert r_single.counters == r_sharded.counters
    assert r_single.time_by_kind == r_sharded.time_by_kind
    log_a = p_single.runtime.backend.log
    log_b = p_sharded.runtime.backend.log
    assert log_a.next_seqnum == log_b.next_seqnum
    assert log_a.storage_bytes() == log_b.storage_bytes()
    assert log_a.stream_tags() == log_b.stream_tags()


def test_gc_and_crash_paths_bit_identical_at_1x1():
    config = SystemConfig(seed=13).with_crash_probability(0.15)
    _, r_single = _run(config)
    _, r_sharded = _run(_sharded_1x1(config))
    assert r_single.crashed_attempts == r_sharded.crashed_attempts
    assert r_single.median_ms == r_sharded.median_ms
    assert r_single.counters == r_sharded.counters


def test_overhead_experiment_bit_identical_at_1x1():
    base = SystemConfig(seed=5)
    r_single = run_overhead_point(
        "boki", 0.5, base, rate_per_s=80.0, duration_ms=2_000.0,
        warmup_ms=400.0, num_keys=200,
    )
    r_sharded = run_overhead_point(
        "boki", 0.5, _sharded_1x1(base), rate_per_s=80.0,
        duration_ms=2_000.0, warmup_ms=400.0, num_keys=200,
    )
    assert r_single.median_ms == r_sharded.median_ms
    assert r_single.p99_ms == r_sharded.p99_ms
    assert r_single.avg_total_bytes == r_sharded.avg_total_bytes


def test_default_metric_key_shapes_unchanged():
    """The default (unlabelled) plane emits no shard=/partition= labels,
    so downstream metric-key consumers see the pre-plane shapes."""
    _, result = _run(SystemConfig(seed=3))
    for name, value in result.metrics.items():
        assert "shard=" not in name
        assert "partition=" not in name
    _, labelled = _run(
        SystemConfig(seed=3).with_storage_plane(
            log_shards=2, kv_partitions=2
        )
    )
    assert any("shard=" in name for name in labelled.metrics)
    assert any("partition=" in name for name in labelled.metrics)
