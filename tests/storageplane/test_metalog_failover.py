"""Metalog failover crash edges: committed state survives, in-flight
allocations recover (R>1) or invalidate (R=1), and epoch fencing makes
retry-after-rediscovery duplicate-free.

The property test mirrors the seeded ``logCondAppend`` race suite: the
same two-writer interleavings, but with sequencer crashes (and
crash+failover pairs, which leave the writers holding a stale epoch)
injected between rounds.  Writers follow the taxonomy —
``StorageUnavailableError`` → wait for failover, ``FencedEpochError`` →
refresh the leader epoch and retry — and the final outcome must match a
failure-free run on the monolithic log exactly.
"""

import numpy as np
import pytest

from repro.errors import (
    ConditionalAppendError,
    FencedEpochError,
    StorageUnavailableError,
)
from repro.sharedlog import SharedLog
from repro.storageplane import Metalog, ShardedLog
from repro.storageplane.audit import audit_sharded_log

from .test_cond_append_sharded import _race_script, _run_race


# ----------------------------------------------------------------------
# Metalog unit edges
# ----------------------------------------------------------------------

def test_committed_state_survives_failover():
    meta = Metalog()
    meta.add_refs(1, 3)
    meta.add_refs(2, 1)
    meta.release_ref(1)
    meta.note_trim(0, 5)
    meta.note_trim(1, 9)
    meta.note_stream_trim("obj:a", 2, 4)
    meta.note_stream_trim("obj:a", 1, 7)
    meta.commit(9)
    before = (
        meta.reference_counts(), meta.frontiers(), meta.stream_trims(),
        meta.committed_tail,
    )
    meta.crash_leader()
    meta.failover()
    after = (
        meta.reference_counts(), meta.frontiers(), meta.stream_trims(),
        meta.committed_tail,
    )
    assert before == after
    assert meta.stream_trim("obj:a") == (3, 7)


def test_r1_failover_invalidates_inflight_allocations():
    meta = Metalog()
    installed = meta.assign()
    meta.commit(installed)
    inflight = meta.assign()  # never installed: dies with the leader
    meta.crash_leader()
    meta.failover()
    assert meta.invalidated_allocations == 1
    # The number is re-issued — safe, the old epoch is fenced.
    assert meta.next_seqnum == inflight
    assert meta.next_seqnum == meta.committed_tail + 1


def test_r3_failover_recovers_inflight_allocations():
    meta = Metalog(replication=3)
    meta.commit(meta.assign())
    meta.assign()
    cursor = meta.next_seqnum
    meta.crash_leader()
    meta.failover()
    # Standbys mirrored the assignment: the cursor is recovered intact.
    assert meta.next_seqnum == cursor
    assert meta.invalidated_allocations == 0


def test_fencing_taxonomy():
    meta = Metalog()
    meta.check_epoch(1)  # current epoch passes
    meta.check_epoch(None)  # None always bypasses
    meta.crash_leader()
    meta.check_epoch(None)  # ... even with the leader down
    with pytest.raises(StorageUnavailableError):
        meta.check_epoch(1)
    new_epoch = meta.failover()
    with pytest.raises(FencedEpochError) as exc_info:
        meta.check_epoch(1)
    fence = exc_info.value
    assert fence.stale_epoch == 1
    assert fence.current_epoch == new_epoch == 2
    assert fence.retryable  # retryable-after-rediscovery, not terminal
    assert meta.fenced_appends == 1
    meta.check_epoch(new_epoch)


def test_fenced_append_is_never_applied_twice():
    """Regression: the fence fires before any effect, so the
    rediscover-and-retry sequence installs exactly one record."""
    log = ShardedLog(shards=2)
    epoch = log.epoch
    log.crash_sequencer()
    log.failover_sequencer()
    before = (log.append_count, log.next_seqnum)
    with pytest.raises(FencedEpochError):
        log.append(["t:a"], {"v": 1}, epoch=epoch)
    # Nothing happened: no record, no allocation, no stream entry.
    assert (log.append_count, log.next_seqnum) == before
    assert log.stream_length("t:a") == 0
    seqnum = log.append(["t:a"], {"v": 1}, epoch=log.epoch)
    assert [r.seqnum for r in log.read_stream("t:a")] == [seqnum]
    assert log.metalog.fenced_appends == 1


# ----------------------------------------------------------------------
# Seeded failover interleaving property
# ----------------------------------------------------------------------

def _run_race_with_failovers(log, script, seed, cond_tag="step:race"):
    """The cond_append race, with sequencer crashes injected between
    rounds.  Half the injections fail over immediately (writers are left
    fenced); the rest leave the leader down until a writer trips over it
    and waits out the failover."""
    rng = np.random.default_rng(seed)
    crash_rounds = set(
        int(r) for r in rng.integers(0, len(script), size=6)
    )
    epoch = log.epoch
    outcomes = []
    fences = unavailable = 0
    for round_no, (step, first, extras) in enumerate(script):
        if round_no in crash_rounds:
            log.crash_sequencer()
            if rng.random() < 0.5:
                log.failover_sequencer()  # writers now hold a stale epoch
        for peer in (first, 1 - first):
            tags = [cond_tag, extras[peer % len(extras)]]
            for _ in range(4):
                try:
                    seqnum = log.cond_append(
                        tags, {"step": step, "peer": peer}, cond_tag,
                        step, epoch=epoch,
                    )
                    outcomes.append(("win", peer, seqnum))
                    break
                except ConditionalAppendError as exc:
                    outcomes.append(("lose", peer, exc.existing_seqnum))
                    break
                except FencedEpochError:
                    fences += 1
                    epoch = log.epoch  # leader rediscovery
                except StorageUnavailableError:
                    unavailable += 1
                    epoch = log.failover_sequencer()
            else:  # pragma: no cover - would indicate a retry leak
                pytest.fail("writer exhausted its retry budget")
    outcomes.append(
        ("stream", [r.seqnum for r in log.read_stream(cond_tag)])
    )
    outcomes.append(("len", log.stream_length(cond_tag)))
    return outcomes, fences, unavailable


@pytest.mark.parametrize("seed", range(8))
@pytest.mark.parametrize("shards", [2, 4])
def test_cond_append_races_survive_sequencer_failover(seed, shards):
    script = _race_script(seed)
    mono = _run_race(SharedLog(), script)
    log = ShardedLog(shards=shards)
    chaotic, fences, unavailable = _run_race_with_failovers(
        log, script, seed
    )
    # Failovers are invisible in the outcome: every fenced or rejected
    # attempt retried duplicate-free, so win/lose pattern, seqnums, and
    # stream contents match the failure-free monolithic run.
    assert chaotic == mono
    assert fences + unavailable > 0  # the injection actually fired
    assert audit_sharded_log(log) == []


@pytest.mark.parametrize("seed", range(4))
def test_failover_mid_race_with_trims(seed):
    """Crashes composed with trims: the per-tag trim directory keeps
    serving correct offsets across failovers."""
    rng = np.random.default_rng(seed)
    log = ShardedLog(shards=4)
    epoch = log.epoch
    positions = {}
    for i in range(150):
        tag = f"step:{int(rng.integers(0, 6))}"
        pos = positions.get(tag, 0)
        if rng.random() < 0.1:
            log.crash_sequencer()
            epoch = log.failover_sequencer()
        for _ in range(3):
            try:
                log.cond_append([tag], {"p": pos}, tag, pos, epoch=epoch)
                positions[tag] = pos + 1
                break
            except FencedEpochError:
                epoch = log.epoch
        if rng.random() < 0.15 and positions.get(tag, 0) > 1:
            records = log.read_stream(tag)
            log.trim(tag, records[len(records) // 2].seqnum)
    assert audit_sharded_log(log) == []
    # Offset origins survived every failover: each stream's next offset
    # equals the number of successful appends to it, and the trim
    # directory accounts for every record no longer live.
    for tag, pos in positions.items():
        trimmed, _ = log.metalog.stream_trim(tag)
        assert log.stream_length(tag) == pos
        assert len(log.read_stream(tag)) + trimmed == pos
