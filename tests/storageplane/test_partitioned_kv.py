"""PartitionedKV: single-partition parity with KVStore, multi-partition
routing/colocation, and the multi-version layer running unchanged on top."""

from repro.errors import StoreError
from repro.store import GENESIS_VERSION, KVStore, MultiVersionStore
from repro.storageplane import PartitionedKV


def _script(store):
    results = []
    store.put("a", 1, value_bytes=10)
    store.put("b", 2, value_bytes=10)
    results.append(store.get("a"))
    results.append(store.get_with_version("b"))
    results.append(store.conditional_put("a", 5, (3, 0), value_bytes=10))
    results.append(store.conditional_put("a", 6, (0, 0), value_bytes=10))
    store.set_version("b", (9, 1))
    results.append(store.get_with_version("b"))
    results.append(store.delete("b"))
    results.append(store.delete("missing"))
    results.append(sorted(store.keys()))
    results.append(len(store))
    results.append("a" in store)
    results.append(store.storage_bytes())
    results.append(
        (store.read_count, store.write_count, store.conditional_rejections)
    )
    try:
        store.get("missing")
    except StoreError as exc:
        results.append(str(exc))
    return results


def test_single_partition_parity_with_kvstore():
    assert _script(KVStore()) == _script(PartitionedKV(partitions=1))


def test_single_partition_preserves_key_iteration_order():
    plain, part = KVStore(), PartitionedKV(partitions=1)
    for store in (plain, part):
        for key in ("z", "a", "m@v1", "m"):
            store.put(key, 0)
    assert list(plain.keys()) == list(part.keys())


def test_keys_route_deterministically_and_colocate_versions():
    kv = PartitionedKV(partitions=4)
    home = kv.partition_of("obj:7")
    assert kv.partition_of("obj:7@genesis") == home
    assert kv.partition_of("obj:7@seal.12") == home
    kv.put("obj:7", "latest")
    kv.put("obj:7@genesis", "v0")
    stats = kv.partition_stats()
    assert stats[home]["keys"] == 2
    assert sum(s["keys"] for s in stats) == 2


def test_counters_and_bytes_sum_over_partitions():
    kv = PartitionedKV(partitions=4)
    for i in range(20):
        kv.put(f"k{i}", i, value_bytes=8)
    for i in range(20):
        assert kv.get(f"k{i}") == i
    assert kv.read_count == 20
    assert kv.write_count == 20
    assert kv.storage_bytes() == sum(
        kv.partition_bytes(i) for i in range(4)
    )
    assert len(kv) == 20
    assert sorted(kv.keys()) == sorted(f"k{i}" for i in range(20))


def test_partition_storage_listener_reports_the_touched_partition():
    kv = PartitionedKV(partitions=4)
    events = []
    kv.add_partition_storage_listener(lambda p, b: events.append((p, b)))
    kv.put("hello", 1, value_bytes=30)
    home = kv.partition_of("hello")
    assert events == [(home, kv.partition_bytes(home))]


def test_aggregate_storage_listener_sees_totals():
    kv = PartitionedKV(partitions=2)
    totals = []
    kv.add_storage_listener(totals.append)
    kv.put("x", 1, value_bytes=10)
    kv.put("y", 2, value_bytes=10)
    # Aggregate totals after each write, regardless of which partition
    # absorbed it.
    assert totals == [10, 20]
    assert kv.storage_bytes() == 20


def test_multiversion_store_works_over_partitions():
    kv = PartitionedKV(partitions=4)
    mv = MultiVersionStore(kv)
    mv.write_version("acct", "genesis", 0)
    mv.write_version("acct", "5.1", 100)
    assert mv.read_version("acct", "genesis") == 0
    assert mv.read_version("acct", "5.1") == 100
    assert sorted(mv.list_versions("acct")) == ["5.1", "genesis"]
    assert mv.delete_version("acct", "genesis") is True
    # The genesis marker is re-exported unchanged through the plane.
    from repro.storageplane import GENESIS_VERSION as PLANE_GENESIS
    assert PLANE_GENESIS == GENESIS_VERSION


def test_conditional_put_is_single_partition_and_versioned():
    kv = PartitionedKV(partitions=4)
    kv.put("k", "v0")
    assert kv.conditional_put("k", "v1", (5, 0)) is True
    assert kv.conditional_put("k", "v2", (2, 0)) is False
    assert kv.conditional_rejections == 1
    assert kv.get_with_version("k") == ("v1", (5, 0))
