"""StoragePlane selection, the backend registry, and the architectural
invariant that protocol code never binds to a concrete storage class."""

import ast
import pathlib

import pytest

import repro.protocols as protocols_pkg
from repro.config import SystemConfig
from repro.errors import ConfigError
from repro.runtime import ServiceBackend
from repro.sharedlog import SharedLog
from repro.storageplane import (
    ShardedPlane,
    SingleNodePlane,
    StoragePlane,
    available_backends,
    build_storage_plane,
    register_backend,
)
from repro.storageplane.plane import _BACKENDS
from repro.store import KVStore


def test_auto_selects_single_at_1x1():
    plane = build_storage_plane(SystemConfig())
    assert isinstance(plane, SingleNodePlane)
    assert plane.name == "single"
    assert plane.labelled is False
    assert plane.num_log_shards == 1
    assert plane.num_kv_partitions == 1
    assert plane.log_shard_of("anything") == 0
    assert plane.kv_partition_of("anything") == 0


def test_auto_selects_sharded_when_scaled():
    config = SystemConfig().with_storage_plane(log_shards=4)
    plane = build_storage_plane(config)
    assert isinstance(plane, ShardedPlane)
    assert plane.labelled is True
    assert plane.num_log_shards == 4
    assert plane.num_kv_partitions == 1


def test_explicit_backend_overrides_auto():
    config = SystemConfig().with_storage_plane(backend="sharded")
    plane = build_storage_plane(config)
    assert isinstance(plane, ShardedPlane)
    assert plane.num_log_shards == 1  # sharded machinery, 1×1 topology


def test_unknown_backend_rejected():
    config = SystemConfig().with_storage_plane(backend="bogus")
    with pytest.raises(ConfigError):
        build_storage_plane(config)


def test_register_backend_plugs_into_config_selection():
    class TinyPlane(StoragePlane):
        name = "tiny"

        def __init__(self, config):
            self._log = SharedLog()
            self._kv = KVStore()

        @property
        def log(self):
            return self._log

        @property
        def kv(self):
            return self._kv

        @property
        def mv(self):
            return None

    register_backend("tiny", TinyPlane)
    try:
        config = SystemConfig().with_storage_plane(backend="tiny")
        plane = build_storage_plane(config)
        assert plane.name == "tiny"
        assert "tiny" in available_backends()
        with pytest.raises(ConfigError):
            register_backend("auto", TinyPlane)
    finally:
        _BACKENDS.pop("tiny", None)


def test_describe_snapshots_topology():
    single = build_storage_plane(SystemConfig())
    assert single.describe() == {
        "backend": "single", "log_shards": 1, "kv_partitions": 1,
    }
    sharded = build_storage_plane(
        SystemConfig().with_storage_plane(log_shards=2, kv_partitions=3)
    )
    info = sharded.describe()
    assert info["backend"] == "sharded"
    assert info["log_shards"] == 2
    assert info["kv_partitions"] == 3
    assert info["shard_bytes"] == [0, 0]
    assert info["partition_bytes"] == [0, 0, 0]


def test_service_backend_binds_through_the_plane():
    backend = ServiceBackend(
        SystemConfig().with_storage_plane(log_shards=2, kv_partitions=2)
    )
    assert backend.log is backend.plane.log
    assert backend.kv is backend.plane.kv
    assert backend.mv is backend.plane.mv
    assert backend.plane.labelled
    # Placement helpers label ops on labelled planes only.
    assert backend.log_placement("t")[0] == "shard"
    assert backend.kv_placement("k")[0] == "partition"
    default = ServiceBackend(SystemConfig())
    assert default.log_placement("t") is None
    assert default.kv_placement("k") is None


def test_storage_plane_probe_registered():
    backend = ServiceBackend(SystemConfig())
    snapshot = backend.metrics.snapshot()
    probe = snapshot["storage_plane"]
    assert probe["backend"] == "single"
    assert probe["log_shards"] == 1


def test_no_protocol_module_imports_concrete_storage():
    """Architectural invariant: ``repro.protocols`` binds to the
    storage-plane interface, never to SharedLog/KVStore/... directly."""
    forbidden = {
        "repro.sharedlog.log", "repro.store.kv", "repro.store.versioned",
    }
    forbidden_names = {"SharedLog", "KVStore", "MultiVersionStore",
                       "ShardedLog", "PartitionedKV"}
    package_dir = pathlib.Path(protocols_pkg.__file__).parent
    for path in package_dir.glob("*.py"):
        tree = ast.parse(path.read_text())
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom):
                module = node.module or ""
                resolved = (
                    "repro." + module.lstrip(".") if node.level else module
                )
                assert resolved not in forbidden, (
                    f"{path.name} imports concrete storage {resolved}"
                )
                for alias in node.names:
                    assert alias.name not in forbidden_names, (
                        f"{path.name} imports {alias.name}"
                    )
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    assert alias.name not in forbidden, (
                        f"{path.name} imports {alias.name}"
                    )
