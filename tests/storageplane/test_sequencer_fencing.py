"""Sequencer strategies under failover: fencing, flush-before-epoch-bump,
and the degeneracy pins.

The pluggable sequencers change *how often* the metalog is touched, not
*what* it certifies — so the safety surface is exactly three edges:

* a **stale leased block** (granted under a pre-failover epoch) must
  never advance the committed tail; the metalog's own fence rejects and
  counts the commit, and the next allocation discards the remainder;
* a **batched** sequencer must flush its group-commit buffer *before*
  the epoch bumps — at replication 1 the new leader resets the cursor
  to the committed tail, so an unflushed buffer would re-issue seqnums
  of records the shards already installed;
* ``batch=1`` and ``block=1`` must be **bit-identical** to the monolith
  (the degeneracy the golden CI diffs rely on).
"""

from types import SimpleNamespace

import numpy as np
import pytest

from repro.errors import ConfigError, FencedEpochError
from repro.storageplane import Metalog, ShardedLog
from repro.storageplane.audit import audit_sharded_log
from repro.storageplane.sequencer import (
    BatchedSequencer,
    LeasedRangeSequencer,
    MonolithSequencer,
    available_sequencers,
    build_sequencer,
)


# ----------------------------------------------------------------------
# Leased ranges: epoch fencing
# ----------------------------------------------------------------------

def test_stale_leased_block_can_never_commit():
    meta = Metalog()
    seq = LeasedRangeSequencer(meta, block=8)
    seqnum = seq.assign()
    tail_before = meta.committed_tail
    meta.crash_leader()
    meta.failover()
    # The lease was granted under epoch 1; the metalog is now at 2.
    with pytest.raises(FencedEpochError) as exc_info:
        seq.commit(seqnum)
    assert exc_info.value.stale_epoch == 1
    assert exc_info.value.current_epoch == meta.epoch == 2
    assert meta.committed_tail == tail_before  # tail never moved
    assert meta.fenced_appends == 1


def test_stale_block_remainder_is_discarded_and_counted():
    meta = Metalog()
    seq = LeasedRangeSequencer(meta, block=8)
    first = seq.assign()
    meta.commit(first)  # install the one record that made it
    meta.crash_leader()
    meta.failover()
    # Next allocation lazily notices the epoch moved: the 7 unconsumed
    # numbers are discarded, the block is counted, and a fresh block is
    # leased under the new epoch.
    replacement = seq.assign()
    assert seq.invalidated_blocks == 1
    assert seq.invalidated_seqnums == 7
    assert seq.current_block.epoch == meta.epoch
    # R=1: the failed-over cursor reclaimed the uninstalled numbers, so
    # the replacement block starts right after the committed tail.
    assert replacement == first + 1
    seq.commit(replacement)
    assert meta.committed_tail == replacement


def test_leased_blocks_survive_failover_through_the_sharded_log():
    log = ShardedLog(
        shards=2, sequencer="leased-ranges",
        sequencer_options=SimpleNamespace(sequencer_block=4),
    )
    for i in range(6):  # spans two blocks
        log.append(["t:a"], {"i": i})
    epoch = log.epoch
    log.crash_sequencer()
    log.failover_sequencer()
    with pytest.raises(FencedEpochError):
        log.append(["t:a"], {"i": "stale"}, epoch=epoch)
    seqnum = log.append(["t:a"], {"i": 6}, epoch=log.epoch)
    records = [r.data["i"] for r in log.read_stream("t:a")]
    assert records == [0, 1, 2, 3, 4, 5, 6]
    assert log.read_stream("t:a")[-1].seqnum == seqnum
    stats = log.sequencer.stats()
    assert stats["invalidated_blocks"] == 1
    # Block 2 held seqnums for i=4..7; i=4 and i=5 consumed it to the
    # cursor, so two numbers died with the old epoch.
    assert stats["invalidated_seqnums"] == 2
    assert audit_sharded_log(log) == []


# ----------------------------------------------------------------------
# Batched: flush-before-failover
# ----------------------------------------------------------------------

def test_batched_flushes_pending_commits_before_epoch_bump():
    log = ShardedLog(
        shards=2, sequencer="batched",
        sequencer_options=SimpleNamespace(
            sequencer_batch=8, sequencer_hold_ms=0.2
        ),
    )
    seqnums = [log.append(["t:a"], {"i": i}) for i in range(5)]
    # Five installs sit in the group-commit buffer: the replicated
    # metalog entry hasn't been appended yet.
    assert log.sequencer.pending_commits == 5
    assert log.metalog.committed_tail < seqnums[-1]
    log.crash_sequencer()
    log.failover_sequencer()
    # on_failover flushed before the epoch bumped: the new leader's
    # reconstructed tail covers every installed record, so the R=1
    # cursor reset cannot re-issue their seqnums.
    assert log.sequencer.pending_commits == 0
    assert log.metalog.committed_tail == seqnums[-1]
    assert log.metalog.invalidated_allocations == 0
    fresh = log.append(["t:a"], {"i": 5}, epoch=log.epoch)
    assert fresh == seqnums[-1] + 1
    assert audit_sharded_log(log) == []


def test_batched_amortizes_commit_appends():
    meta = Metalog()
    seq = BatchedSequencer(meta, batch=4)
    for _ in range(8):
        seq.commit(seq.assign())
    stats = seq.stats()
    assert stats["commit_flushes"] == 2  # 8 installs, 2 metalog appends
    assert stats["mean_batch_size"] == 4.0
    assert meta.committed_tail == seq.tail_seqnum


# ----------------------------------------------------------------------
# Degeneracy pins: batch=1 / block=1 == monolith, bit for bit
# ----------------------------------------------------------------------

def _drive(log, seed):
    """A seeded append/cond_append/trim/failover workout; returns every
    observable the strategies could perturb."""
    rng = np.random.default_rng(seed)
    epoch = log.epoch
    outcomes = []
    for i in range(120):
        tag = f"t:{int(rng.integers(0, 5))}"
        if rng.random() < 0.08:
            log.crash_sequencer()
            epoch = log.failover_sequencer()
        if rng.random() < 0.5:
            outcomes.append(log.append([tag], {"i": i}, epoch=epoch))
        else:
            outcomes.append(
                log.cond_append(
                    [tag], {"i": i}, tag, log.stream_length(tag),
                    epoch=epoch,
                )
            )
        if rng.random() < 0.1:
            records = log.read_stream(tag)
            if len(records) > 2:
                log.trim(tag, records[len(records) // 2].seqnum)
    outcomes.append(("tail", log.metalog.committed_tail))
    outcomes.append(("next", log.next_seqnum))
    for t in range(5):
        outcomes.append(
            ("stream", t, [r.seqnum for r in log.read_stream(f"t:{t}")])
        )
    assert audit_sharded_log(log) == []
    return outcomes


@pytest.mark.parametrize("seed", range(4))
@pytest.mark.parametrize(
    "sequencer, options",
    [
        ("batched", SimpleNamespace(sequencer_batch=1,
                                    sequencer_hold_ms=0.0)),
        ("leased-ranges", SimpleNamespace(sequencer_block=1)),
    ],
)
def test_degenerate_strategies_match_monolith(seed, sequencer, options):
    mono = _drive(ShardedLog(shards=4), seed)
    other = _drive(
        ShardedLog(shards=4, sequencer=sequencer,
                   sequencer_options=options),
        seed,
    )
    assert other == mono


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

def test_registry_names_and_unknown_strategy():
    assert available_sequencers() == [
        "batched", "leased-ranges", "monolith",
    ]
    meta = Metalog()
    assert isinstance(
        build_sequencer("monolith", meta, None), MonolithSequencer
    )
    with pytest.raises(ConfigError):
        build_sequencer("round-robin", meta, None)


@pytest.mark.parametrize(
    "factory",
    [
        lambda meta: BatchedSequencer(meta, batch=0),
        lambda meta: BatchedSequencer(meta, hold_ms=-1.0),
        lambda meta: LeasedRangeSequencer(meta, block=0),
    ],
)
def test_invalid_strategy_parameters(factory):
    with pytest.raises(ConfigError):
        factory(Metalog())
