"""Shard replication and rebuild: promotion, quorum, repair, and the
R=1 rebuild-from-log path (trim directory included)."""

import pytest

from repro.errors import (
    LogError,
    QuorumLostError,
    StorageUnavailableError,
)
from repro.storageplane import ShardedLog
from repro.storageplane.audit import audit_sharded_log


def _routed_tags(log, shard_id, prefix="t", want=4):
    """First ``want`` tags of ``prefix:<i>`` form routed to ``shard_id``."""
    tags = []
    i = 0
    while len(tags) < want:
        tag = f"{prefix}:{i}"
        if log.shard_of(tag) == shard_id:
            tags.append(tag)
        i += 1
    return tags


# ----------------------------------------------------------------------
# R > 1: promotion, quorum, repair
# ----------------------------------------------------------------------

def test_primary_crash_promotes_survivor_and_serves_reads():
    log = ShardedLog(shards=2, replication=3)
    tags = _routed_tags(log, 0)
    seqnums = [log.append([t], {"i": i}) for i, t in enumerate(tags)]
    killed = log.crash_shard_replica(0)
    assert killed == 0  # the serving replica
    rs = log.replica_set(0)
    assert rs.live_count == 2 and rs.has_quorum
    # Reads and writes both survive: the promoted copy mirrored every
    # append.
    assert [r.seqnum for r in log.read_stream(tags[0])] == seqnums[:1]
    log.append([tags[0]], {"i": 99})
    assert log.stream_length(tags[0]) == 2
    assert log.down_shards() == set()


def test_quorum_loss_blocks_writes_but_not_reads():
    log = ShardedLog(shards=2, replication=3)
    tags = _routed_tags(log, 0)
    log.append([tags[0]], {"i": 0})
    log.crash_shard_replica(0)
    log.crash_shard_replica(0)
    assert log.quorum_lost_shards() == {0}
    with pytest.raises(QuorumLostError) as exc_info:
        log.append([tags[0]], {"i": 1})
    assert exc_info.value.shard == 0
    # The rejection happened before the sequencer assigned anything.
    assert log.stream_length(tags[0]) == 1
    assert log.read_stream(tags[0])[0].data["i"] == 0  # reads survive
    # Other shards are untouched.
    other = _routed_tags(log, 1)
    log.append([other[0]], {"i": 2})


def test_repair_restores_quorum_and_agreement():
    log = ShardedLog(shards=2, replication=3)
    tags = _routed_tags(log, 0)
    log.append([tags[0]], {"i": 0})
    log.crash_shard_replica(0)  # promote
    log.append([tags[0]], {"i": 1})  # the dead copy misses this
    rs = log.replica_set(0)
    dead = [i for i, alive in enumerate(rs.live) if not alive]
    for replica in dead:
        assert log.repair_shard_replica(0, replica)
    assert rs.live_count == 3
    assert rs.divergence() == 0  # repair copies wholesale, not patches
    assert audit_sharded_log(log) == []


def test_mirrored_trims_survive_promotion():
    log = ShardedLog(shards=2, replication=3)
    tags = _routed_tags(log, 0)
    for i in range(4):
        log.append([tags[0]], {"i": i})
    records = [r.seqnum for r in log.read_stream(tags[0])]
    log.trim(tags[0], records[1])
    log.crash_shard_replica(0)  # promoted copy must carry the trim
    stream = [r.seqnum for r in log.read_stream(tags[0])]
    assert stream == records[2:]
    # Offset arithmetic intact: the next cond_append offset is 4.
    log.cond_append([tags[0]], {"i": 4}, tags[0], 4)
    assert audit_sharded_log(log) == []


def test_losing_every_replica_takes_the_shard_down():
    log = ShardedLog(shards=2, replication=2)
    tags = _routed_tags(log, 0)
    log.append([tags[0]], {"i": 0})
    log.crash_shard_replica(0)
    log.crash_shard_replica(0)
    assert log.down_shards() == {0}
    with pytest.raises(StorageUnavailableError):
        log.read_stream(tags[0])
    restored = log.rebuild_shard(0)
    assert restored >= 1
    assert log.stream_length(tags[0]) == 1
    assert audit_sharded_log(log) == []


def test_repair_requires_replication():
    log = ShardedLog(shards=2)
    with pytest.raises(LogError):
        log.repair_shard_replica(0, 0)


# ----------------------------------------------------------------------
# R = 1: whole-shard loss and rebuild from the log
# ----------------------------------------------------------------------

def test_r1_crash_rejects_reads_and_writes_before_effect():
    log = ShardedLog(shards=2)
    tags = _routed_tags(log, 0)
    log.append([tags[0]], {"i": 0})
    allocations = log.next_seqnum
    log.crash_shard_replica(0)
    assert log.down_shards() == {0}
    with pytest.raises(StorageUnavailableError):
        log.append([tags[0]], {"i": 1})
    with pytest.raises(StorageUnavailableError):
        log.read_prev(tags[0], 10_000)
    assert log.next_seqnum == allocations  # nothing assigned
    # Trims on a down shard under-collect silently; GC retries later.
    assert log.trim(tags[0], 10_000) == 0


def test_r1_rebuild_restores_exact_streams():
    log = ShardedLog(shards=2)
    tags = _routed_tags(log, 0, want=3)
    other = _routed_tags(log, 1, want=1)
    for i in range(5):
        log.append([tags[i % 3], other[0]], {"i": i})
    before = {
        tag: ([r.seqnum for r in log.read_stream(tag)],
              log.shard(0).streams[tag].trimmed_count)
        for tag in tags
    }
    log.crash_shard_replica(0)
    log.rebuild_shard(0)
    after = {
        tag: ([r.seqnum for r in log.read_stream(tag)],
              log.shard(0).streams[tag].trimmed_count)
        for tag in tags
    }
    assert before == after
    assert log.rebuilds == 1
    # The other shard never noticed.
    assert log.stream_length(other[0]) == 5
    assert audit_sharded_log(log) == []


def test_r1_rebuild_respects_trim_directory():
    """Rebuild must not resurrect garbage-collected records, and a
    fully-trimmed stream keeps its offset origin."""
    log = ShardedLog(shards=2)
    tags = _routed_tags(log, 0, want=2)
    partial, full = tags
    for i in range(4):
        log.append([partial], {"i": i})
    for i in range(3):
        log.append([full], {"i": i})
    records = [r.seqnum for r in log.read_stream(partial)]
    log.trim(partial, records[1])          # drop 2 of 4
    log.trim(full, log.tail_seqnum)        # drop the whole stream
    log.crash_shard_replica(0)
    log.rebuild_shard(0)
    assert [r.seqnum for r in log.read_stream(partial)] == records[2:]
    # The fully-trimmed stream has no live records but its offset
    # origin survives: the next cond_append serializes at offset 3.
    assert log.read_stream(full) == []
    assert log.stream_length(full) == 3
    log.cond_append([full], {"i": 3}, full, 3)
    assert audit_sharded_log(log) == []


def test_r1_rebuild_under_cond_append_load():
    """Crash + rebuild mid-race: offsets keep serializing correctly."""
    log = ShardedLog(shards=2)
    tags = _routed_tags(log, 0, want=2)
    positions = {t: 0 for t in tags}
    for round_no in range(30):
        if round_no == 11:
            log.crash_shard_replica(0)
            log.rebuild_shard(0)
        for tag in tags:
            pos = positions[tag]
            log.cond_append([tag], {"p": pos}, tag, pos)
            positions[tag] = pos + 1
    for tag, pos in positions.items():
        assert log.stream_length(tag) == pos
    assert audit_sharded_log(log) == []
