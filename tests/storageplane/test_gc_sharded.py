"""GC over the sharded plane: per-shard trim frontiers from the metalog,
and the regression that trimming shard A never drops shard B's records."""

from repro.config import SystemConfig
from repro.runtime import LocalRuntime, instance_tag, object_tag
from repro.storageplane import ShardedLog


def rw(ctx, inp):
    value = ctx.read(inp["key"])
    ctx.write(inp["key"], inp["value"])
    return value


def reader(ctx, inp):
    return ctx.read(inp["key"])


def _sharded_runtime(protocol="halfmoon-read", shards=4, partitions=4):
    config = SystemConfig(seed=21).with_storage_plane(
        log_shards=shards, kv_partitions=partitions
    )
    runtime = LocalRuntime(config, protocol=protocol)
    runtime.register("rw", rw)
    runtime.register("reader", reader)
    return runtime


def test_gc_reports_per_shard_frontiers():
    runtime = _sharded_runtime()
    for key in ("acct", "cart", "user", "item"):
        runtime.populate(key, "v0")
    for i in range(12):
        key = ("acct", "cart", "user", "item")[i % 4]
        runtime.invoke("rw", {"key": key, "value": f"v{i}"})
    stats = runtime.run_gc()
    assert stats.total_trimmed() > 0
    assert stats.shard_frontiers  # sharded plane publishes frontiers
    log = runtime.backend.log
    assert stats.shard_frontiers == log.shard_trim_frontiers()
    # Frontier values are real seqnums from this run.
    assert all(0 < f < log.next_seqnum
               for f in stats.shard_frontiers.values())


def test_gc_on_default_plane_has_no_frontiers():
    runtime = LocalRuntime(SystemConfig(seed=21), protocol="halfmoon-read")
    runtime.register("rw", rw)
    runtime.populate("acct", "v0")
    runtime.invoke("rw", {"key": "acct", "value": "v1"})
    stats = runtime.run_gc()
    assert stats.shard_frontiers == {}


def test_instance_trim_on_one_shard_preserves_object_logs_elsewhere():
    """The cross-layer regression: finished-SSF trims (instance streams,
    their shards) must not reclaim object write-log records other shards
    still serve — the metalog refcount keeps bodies alive."""
    runtime = _sharded_runtime(protocol="boki")
    log = runtime.backend.log
    assert isinstance(log, ShardedLog)
    runtime.populate("acct", 0)
    runtime.invoke("rw", {"key": "acct", "value": 5})
    obj_tag = object_tag("acct")
    before = [r.seqnum for r in log.read_stream(obj_tag)]
    assert before  # the write went to the object log
    stats = runtime.run_gc()
    # Instance streams were trimmed on their shards...
    assert stats.step_log_records_trimmed > 0
    # ...but the object stream still serves its surviving records and
    # the latest state is intact.
    assert log.read_prev(obj_tag, log.tail_seqnum) is not None
    assert all(frontier <= log.tail_seqnum
               for frontier in stats.shard_frontiers.values())
    value = runtime.invoke("reader", {"key": "acct"}).output
    assert value == 5


def test_direct_cross_shard_trim_isolation_via_gc_machinery():
    """Trim instance streams shard by shard; records co-tagged on other
    shards survive until *their* streams trim (metalog-owned refcounts)."""
    runtime = _sharded_runtime()
    log = runtime.backend.log
    inst_a, inst_b = "aaaa", "dddd"
    tag_a, tag_b = instance_tag(inst_a), instance_tag(inst_b)
    assert log.shard_of(tag_a) != log.shard_of(tag_b)
    seqnums = [
        log.append([tag_a, tag_b], {"step": i}) for i in range(5)
    ]
    live_before = log.live_record_count
    assert log.trim(tag_a, log.tail_seqnum) == 5
    assert [r.seqnum for r in log.read_stream(tag_b)] == seqnums
    assert log.live_record_count == live_before  # no body freed yet
    assert log.trim(tag_b, log.tail_seqnum) == 5
    assert log.read_stream(tag_b) == []
    assert log.live_record_count == live_before - 5
