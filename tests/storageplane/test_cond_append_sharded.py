"""Property-style check: ``logCondAppend`` races serialize through the
metalog identically no matter how the racing records' tags are sharded.

Two peer instances racing to extend the same step stream is the paper's
Section 5.1 scenario.  The shared condition tag may live on any shard,
and each record carries extra tags scattered across other shards; the
outcome (winner's seqnum, loser's observed seqnum, stream contents)
must match the monolithic log for every seed and every shard count."""

import numpy as np
import pytest

from repro.errors import ConditionalAppendError
from repro.sharedlog import SharedLog
from repro.storageplane import ShardedLog


def _race_script(seed, rounds=60):
    """Deterministic interleaving of two writers on one step stream."""
    rng = np.random.default_rng(seed)
    script = []
    for step in range(rounds):
        # Each round: both peers try to claim offset `step`; the order
        # of attempts and the extra (shard-scattering) tags vary.
        first = int(rng.integers(0, 2))
        extras = [
            f"obj:{int(rng.integers(0, 12))}",
            f"inst:{int(rng.integers(0, 4))}",
        ]
        script.append((step, first, extras))
    return script


def _run_race(log, script, cond_tag="step:race"):
    outcomes = []
    for step, first, extras in script:
        for peer in (first, 1 - first):
            tags = [cond_tag, extras[peer % len(extras)]]
            try:
                seqnum = log.cond_append(
                    tags, {"step": step, "peer": peer}, cond_tag, step
                )
                outcomes.append(("win", peer, seqnum))
            except ConditionalAppendError as exc:
                outcomes.append(("lose", peer, exc.existing_seqnum))
    outcomes.append(
        ("stream", [r.seqnum for r in log.read_stream(cond_tag)])
    )
    outcomes.append(("len", log.stream_length(cond_tag)))
    return outcomes


@pytest.mark.parametrize("seed", range(8))
@pytest.mark.parametrize("shards", [2, 4, 8])
def test_cond_append_race_outcome_is_shard_invariant(seed, shards):
    script = _race_script(seed)
    mono = _run_race(SharedLog(), script)
    sharded = _run_race(ShardedLog(shards=shards), script)
    assert mono == sharded


@pytest.mark.parametrize("seed", range(4))
def test_cond_append_races_on_cross_shard_cond_tags(seed):
    """Races on many condition tags at once: each tag's stream still
    serializes independently through the single metalog sequencer."""
    rng = np.random.default_rng(seed)
    log = ShardedLog(shards=4)
    mono = SharedLog()
    positions = {}
    for _ in range(200):
        tag = f"step:{int(rng.integers(0, 10))}"
        pos = positions.get(tag, 0)
        stale = rng.random() < 0.3 and pos > 0
        attempt_pos = pos - 1 if stale else pos
        results = []
        for candidate in (log, mono):
            try:
                results.append(
                    ("ok", candidate.cond_append(
                        [tag], {"p": attempt_pos}, tag, attempt_pos
                    ))
                )
            except ConditionalAppendError as exc:
                results.append(("conflict", exc.existing_seqnum))
        assert results[0] == results[1]
        if results[0][0] == "ok":
            positions[tag] = pos + 1
    assert log.next_seqnum == mono.next_seqnum
