"""ShardedLog: single-shard parity with SharedLog, multi-shard routing,
and cross-shard trim isolation (the metalog owns refcounts/frontiers)."""

import numpy as np
import pytest

from repro.errors import (
    ConditionalAppendError,
    LogError,
    ProtocolError,
    TrimmedError,
)
from repro.sharedlog import SharedLog
from repro.storageplane import Metalog, ShardedLog


# ---------------------------------------------------------------------------
# Single-shard parity: every operation mirrors the monolithic log
# ---------------------------------------------------------------------------


def _random_ops(seed, ops=400, tags=8):
    """A deterministic op script touching appends/reads/trims."""
    rng = np.random.default_rng(seed)
    script = []
    for _ in range(ops):
        tag = f"t{int(rng.integers(0, tags))}"
        other = f"t{int(rng.integers(0, tags))}"
        roll = rng.random()
        if roll < 0.45:
            script.append(("append", [tag, other], int(rng.integers(0, 99))))
        elif roll < 0.65:
            script.append(("read_prev", tag, int(rng.integers(0, 500))))
        elif roll < 0.80:
            script.append(("read_next", tag, int(rng.integers(0, 500))))
        elif roll < 0.90:
            script.append(("read_stream", tag))
        else:
            script.append(("trim", tag, int(rng.integers(0, 300))))
    return script


def _apply(log, op):
    kind = op[0]
    try:
        if kind == "append":
            return ("ok", log.append(op[1], {"n": 1}, payload_bytes=op[2]))
        if kind == "read_prev":
            r = log.read_prev(op[1], op[2])
            return ("ok", None if r is None else r.seqnum)
        if kind == "read_next":
            r = log.read_next(op[1], op[2])
            return ("ok", None if r is None else r.seqnum)
        if kind == "read_stream":
            return ("ok", [r.seqnum for r in log.read_stream(op[1])])
        if kind == "trim":
            return ("ok", log.trim(op[1], op[2]))
    except (LogError, TrimmedError) as exc:
        return (type(exc).__name__, str(exc))
    raise AssertionError(f"unknown op {kind}")


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_single_shard_parity_with_shared_log(seed):
    mono = SharedLog()
    sharded = ShardedLog(shards=1)
    byte_trace_mono, byte_trace_sharded = [], []
    mono.add_storage_listener(byte_trace_mono.append)
    sharded.add_storage_listener(byte_trace_sharded.append)
    for op in _random_ops(seed):
        assert _apply(mono, op) == _apply(sharded, op)
    assert byte_trace_mono == byte_trace_sharded
    assert mono.storage_bytes() == sharded.storage_bytes()
    assert mono.next_seqnum == sharded.next_seqnum
    assert mono.stream_tags() == sharded.stream_tags()
    assert mono.append_count == sharded.append_count
    assert mono.trim_count == sharded.trim_count
    assert mono.live_record_count == sharded.live_record_count


def test_single_shard_cond_append_parity():
    mono, sharded = SharedLog(), ShardedLog(shards=1)
    for log in (mono, sharded):
        log.append(["s"], {"step": 0})
    for log in (mono, sharded):
        with pytest.raises(ConditionalAppendError) as exc_info:
            log.cond_append(["s"], {"step": 0}, "s", 0)
        assert exc_info.value.existing_seqnum == 1
    for log in (mono, sharded):
        with pytest.raises(ProtocolError):
            log.cond_append(["s"], {"step": 9}, "s", 9)
    assert (mono.cond_append(["s"], {"step": 1}, "s", 1)
            == sharded.cond_append(["s"], {"step": 1}, "s", 1))


# ---------------------------------------------------------------------------
# Multi-shard behaviour
# ---------------------------------------------------------------------------


def test_seqnums_are_globally_monotone_across_shards():
    log = ShardedLog(shards=4)
    seqnums = [
        log.append([f"tag-{i}"], {"i": i}) for i in range(50)
    ]
    assert seqnums == list(range(1, 51))
    homes = {log.shard_of(f"tag-{i}") for i in range(50)}
    assert homes == {0, 1, 2, 3}


def test_record_body_accounted_once_on_home_shard():
    log = ShardedLog(meta_bytes=10, shards=4)
    tag_a, tag_b = "alpha", "delta"
    assert log.shard_of(tag_a) != log.shard_of(tag_b)
    log.append([tag_a, tag_b], {"x": 1}, payload_bytes=90)
    # Body homed on the first tag's shard, once.
    assert log.shard_bytes(log.shard_of(tag_a)) == 100
    assert log.shard_bytes(log.shard_of(tag_b)) == 0
    assert log.storage_bytes() == 100


def test_trim_on_shard_a_never_drops_records_on_shard_b():
    """The cross-shard trim-isolation regression (metalog refcounts)."""
    log = ShardedLog(shards=4)
    tag_a, tag_b = "alpha", "delta"
    shard_a, shard_b = log.shard_of(tag_a), log.shard_of(tag_b)
    assert shard_a != shard_b
    # Records indexed by BOTH tags, so each lives on two shards.
    seqnums = [
        log.append([tag_a, tag_b], {"i": i}) for i in range(6)
    ]
    assert log.trim(tag_a, seqnums[-1]) == 6
    # Shard A's frontier advanced; shard B's did not.
    assert log.metalog.shard_frontier(shard_a) == seqnums[-1]
    assert log.metalog.shard_frontier(shard_b) == 0
    # Every record is still fully readable through shard B's stream.
    assert [r.seqnum for r in log.read_stream(tag_b)] == seqnums
    assert log.read_prev(tag_b, seqnums[-1]).seqnum == seqnums[-1]
    assert log.live_record_count == 6
    # Only after shard B also trims are the bodies freed.
    assert log.trim(tag_b, seqnums[-1]) == 6
    assert log.live_record_count == 0
    assert log.storage_bytes() == 0
    assert log.metalog.shard_frontier(shard_b) == seqnums[-1]


def test_shard_storage_listener_fires_per_shard():
    log = ShardedLog(meta_bytes=10, shards=4)
    events = []
    log.add_shard_storage_listener(lambda s, b: events.append((s, b)))
    tag = "alpha"
    log.append([tag], {"x": 1}, payload_bytes=40)
    assert events == [(log.shard_of(tag), 50)]


def test_shard_stats_shape():
    log = ShardedLog(shards=2)
    log.append(["a"], {"x": 1})
    stats = log.shard_stats()
    assert [s["shard"] for s in stats] == [0, 1]
    assert sum(s["homed_records"] for s in stats) == 1
    assert all("trim_frontier" in s for s in stats)


def test_metalog_release_without_refs_is_an_error():
    meta = Metalog()
    with pytest.raises(LogError):
        meta.release_ref(7)
