"""KV partition loss and rebuild: redo journaling, checkpoints, and
key-by-key rebuild fidelity."""

import pytest

from repro.errors import PartitionUnavailableError, StoreError
from repro.storageplane import PartitionedKV, diff_partition_snapshots
from repro.storageplane.audit import audit_partitioned_kv


def _routed_keys(kv, index, want=4):
    keys = []
    i = 0
    while len(keys) < want:
        key = f"k{i}"
        if kv.partition_of(key) == index:
            keys.append(key)
        i += 1
    return keys


def _mutate(kv, keys):
    """A mix of every journaled operation kind."""
    kv.put(keys[0], "a", value_bytes=8)
    kv.put(keys[1], {"v": 1}, value_bytes=16)
    kv.conditional_put(keys[2], "c1", (1,), value_bytes=4)
    kv.conditional_put(keys[2], "c2", (2,), value_bytes=4)  # wins
    kv.conditional_put(keys[2], "stale", (1,), value_bytes=4)  # loses
    kv.set_version(keys[0], (7,))
    kv.put(keys[3], "gone", value_bytes=4)
    kv.delete(keys[3])
    kv.put(keys[0], "a2", value_bytes=8)


def test_crash_rejects_ops_before_effect():
    kv = PartitionedKV(partitions=2, durability=True)
    keys = _routed_keys(kv, 0)
    kv.put(keys[0], "x", value_bytes=4)
    kv.crash_partition(0)
    assert kv.down_partitions() == {0}
    for op in (
        lambda: kv.get(keys[0]),
        lambda: kv.put(keys[0], "y", value_bytes=4),
        lambda: kv.conditional_put(keys[0], "y", (9,), value_bytes=4),
        lambda: kv.delete(keys[0]),
    ):
        with pytest.raises(PartitionUnavailableError):
            op()
    # The other partition serves throughout.
    other = _routed_keys(kv, 1, want=1)
    kv.put(other[0], "ok", value_bytes=4)
    assert kv.get(other[0]) == "ok"


def test_rebuild_restores_exact_state():
    kv = PartitionedKV(partitions=2, durability=True)
    keys = _routed_keys(kv, 0)
    _mutate(kv, keys)
    before = kv.snapshot_partition(0)
    kv.crash_partition(0)
    replayed = kv.rebuild_partition(0)
    assert replayed == kv.journal_length(0) or replayed >= 0
    after = kv.snapshot_partition(0)
    assert diff_partition_snapshots(before, after) == []
    assert kv.down_partitions() == set()
    assert kv.rebuilds == 1
    assert audit_partitioned_kv(kv) == []
    # The losing conditional_put replayed as a losing attempt: the
    # journal records attempts and the replay re-decides identically.
    assert kv.get(keys[2]) == "c2"


def test_checkpoint_truncates_journal_and_rebuild_still_exact():
    kv = PartitionedKV(partitions=2, durability=True)
    keys = _routed_keys(kv, 0)
    _mutate(kv, keys)
    journal_before = kv.journal_length(0)
    assert journal_before > 0
    truncated = kv.checkpoint_partition(0)
    assert truncated == journal_before
    assert kv.journal_length(0) == 0
    # Post-checkpoint mutations land in the fresh journal; the rebuild
    # is checkpoint + replay.
    kv.put(keys[1], "post-ckpt", value_bytes=8)
    before = kv.snapshot_partition(0)
    kv.crash_partition(0)
    assert kv.rebuild_partition(0) == 1
    assert diff_partition_snapshots(before, kv.snapshot_partition(0)) == []
    assert audit_partitioned_kv(kv) == []


def test_checkpoint_skips_down_partitions():
    kv = PartitionedKV(partitions=2, durability=True)
    keys = _routed_keys(kv, 0)
    kv.put(keys[0], "x", value_bytes=4)
    kv.crash_partition(0)
    # Its journal is exactly what the rebuild needs — never truncate it.
    assert kv.checkpoint_partition(0) == 0
    assert kv.journal_length(0) == 1
    kv.rebuild_partition(0)
    assert kv.get(keys[0]) == "x"


def test_rebuild_requires_durability():
    kv = PartitionedKV(partitions=2)
    assert not kv.durability
    kv.crash_partition(0)
    with pytest.raises(StoreError):
        kv.rebuild_partition(0)


def test_diff_detects_loss_resurrection_and_divergence():
    before = {"a": (1, (1,)), "b": (2, (1,)), "c": (3, (1,))}
    after = {"a": (1, (1,)), "c": (9, (2,)), "d": (4, (1,))}
    diffs = diff_partition_snapshots(before, after)
    assert len(diffs) == 3
    assert any("'b' lost" in d for d in diffs)
    assert any("'d' resurrected" in d for d in diffs)
    assert any("'c' diverged" in d for d in diffs)
