"""Deterministic placement: stable hashing, base-key colocation,
placement policies."""

import pytest

from repro.errors import ConfigError
from repro.storageplane import PLACEMENT_POLICIES, Router, base_key, stable_hash


def test_stable_hash_is_process_independent():
    # CRC-32 reference values: must never drift across runs/platforms
    # (Python's builtin hash() is salted and would).
    assert stable_hash("obj:key-1") == stable_hash("obj:key-1")
    assert stable_hash("") == 0
    assert stable_hash("a") == 0xE8B7BE43


def test_base_key_strips_version_suffix():
    assert base_key("counter@v3") == "counter"
    assert base_key("counter") == "counter"
    assert base_key("a@b@c") == "a"


def test_single_shard_routes_everything_to_zero():
    router = Router(1)
    assert all(router.route(f"tag-{i}") == 0 for i in range(50))


def test_hash_routing_is_stable_and_in_range():
    router = Router(4)
    routes = {tag: router.route(tag) for tag in
              (f"obj:{i}" for i in range(200))}
    assert set(routes.values()) <= {0, 1, 2, 3}
    # Re-route: same answers (stateless).
    again = Router(4)
    assert all(again.route(tag) == shard for tag, shard in routes.items())
    # A reasonable spread: every shard gets some tags.
    assert len(set(routes.values())) == 4


def test_versions_colocate_with_their_object():
    router = Router(8)
    home = router.route_store_key("account:42")
    for version in ("genesis", "17.3", "seal.900"):
        assert router.route_store_key(f"account:42@{version}") == home


def test_first_seen_round_robins_deterministically():
    router = Router(3, placement="first_seen")
    tags = [f"t{i}" for i in range(7)]
    first = [router.route(t) for t in tags]
    assert first == [0, 1, 2, 0, 1, 2, 0]
    # Idempotent: repeat routes keep their assignment.
    assert [router.route(t) for t in tags] == first


def test_invalid_router_configs_rejected():
    with pytest.raises(ConfigError):
        Router(0)
    with pytest.raises(ConfigError):
        Router(2, placement="nope")
    assert PLACEMENT_POLICIES == ("hash", "first_seen")
