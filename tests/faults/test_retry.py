"""Unit tests for the retry/backoff policy."""

import numpy as np
import pytest

from repro.config import ResilienceConfig
from repro.errors import ConfigError
from repro.faults import RetryPolicy
from repro.faults.injector import FAULT_ERROR, FAULT_TIMEOUT


def no_jitter(**kwargs):
    return RetryPolicy(jitter_fraction=0.0, **kwargs)


class TestBackoff:
    def test_exponential_growth_without_jitter(self):
        policy = no_jitter(base_backoff_ms=1.0, backoff_multiplier=2.0,
                           max_backoff_ms=100.0)
        rng = np.random.default_rng(0)
        assert [policy.backoff_ms(n, rng) for n in (1, 2, 3, 4)] == [
            1.0, 2.0, 4.0, 8.0,
        ]

    def test_backoff_capped(self):
        policy = no_jitter(base_backoff_ms=1.0, backoff_multiplier=10.0,
                           max_backoff_ms=5.0)
        rng = np.random.default_rng(0)
        assert policy.backoff_ms(1, rng) == 1.0
        assert policy.backoff_ms(2, rng) == 5.0
        assert policy.backoff_ms(10, rng) == 5.0

    def test_jitter_is_bounded_and_deterministic(self):
        policy = RetryPolicy(base_backoff_ms=2.0, jitter_fraction=0.5)
        values = [policy.backoff_ms(1, np.random.default_rng(33))
                  for _ in range(5)]
        assert len(set(values)) == 1  # same seed -> same jitter
        assert 2.0 <= values[0] <= 3.0  # base * (1 + U[0, 0.5])
        other = policy.backoff_ms(1, np.random.default_rng(34))
        assert other != values[0]

    def test_attempt_must_be_one_based(self):
        with pytest.raises(ValueError):
            RetryPolicy().backoff_ms(0, np.random.default_rng(0))


class TestFaultCost:
    def test_timeout_costs_attempt_timeout(self):
        policy = RetryPolicy(attempt_timeout_ms=12.5, error_latency_ms=0.8)
        assert policy.fault_cost_ms(FAULT_TIMEOUT) == 12.5
        assert policy.fault_cost_ms(FAULT_ERROR) == 0.8


class TestFromConfig:
    def test_mirrors_resilience_config(self):
        config = ResilienceConfig(
            max_attempts=7, base_backoff_ms=0.25, backoff_multiplier=3.0,
            max_backoff_ms=50.0, jitter_fraction=0.1,
            attempt_timeout_ms=20.0, error_latency_ms=2.0,
            op_deadline_ms=500.0,
        )
        policy = RetryPolicy.from_config(config)
        assert policy.max_attempts == 7
        assert policy.base_backoff_ms == 0.25
        assert policy.backoff_multiplier == 3.0
        assert policy.max_backoff_ms == 50.0
        assert policy.jitter_fraction == 0.1
        assert policy.attempt_timeout_ms == 20.0
        assert policy.error_latency_ms == 2.0
        assert policy.op_deadline_ms == 500.0

    def test_from_config_validates(self):
        with pytest.raises(ConfigError):
            RetryPolicy.from_config(ResilienceConfig(max_attempts=0))
