"""Unit tests for the circuit breaker state machine."""

import pytest

from repro.faults import BreakerState, CircuitBreaker


def trip(breaker):
    for _ in range(breaker.failure_threshold):
        breaker.record_failure()


class TestClosed:
    def test_starts_closed_and_passive(self):
        breaker = CircuitBreaker("log")
        assert breaker.state == BreakerState.CLOSED
        assert not breaker.is_open
        assert not breaker.consult()

    def test_needs_consecutive_failures_to_trip(self):
        breaker = CircuitBreaker("log", failure_threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()  # resets the streak
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == BreakerState.CLOSED
        breaker.record_failure()
        assert breaker.state == BreakerState.OPEN
        assert breaker.trips == 1

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown_ops=0)


class TestOpen:
    def test_open_reports_degraded_until_cooldown(self):
        breaker = CircuitBreaker("log", failure_threshold=2,
                                 cooldown_ops=3)
        trip(breaker)
        assert breaker.is_open
        # cooldown_ops - 1 degraded consultations, then half-open trial.
        assert breaker.consult() is True
        assert breaker.consult() is True
        assert breaker.consult() is False
        assert breaker.state == BreakerState.HALF_OPEN

    def test_half_open_success_closes(self):
        breaker = CircuitBreaker("log", failure_threshold=2,
                                 cooldown_ops=1)
        trip(breaker)
        assert breaker.consult() is False  # straight to half-open
        breaker.record_success()
        assert breaker.state == BreakerState.CLOSED
        assert breaker.trips == 1

    def test_half_open_failure_reopens_immediately(self):
        breaker = CircuitBreaker("log", failure_threshold=2,
                                 cooldown_ops=1)
        trip(breaker)
        breaker.consult()
        assert breaker.state == BreakerState.HALF_OPEN
        breaker.record_failure()  # trial failed: no threshold needed
        assert breaker.state == BreakerState.OPEN
        assert breaker.trips == 2

    def test_outcomes_while_open_are_ignored(self):
        """Required calls keep flowing during a brown-out; individual
        successes (or further failures) must not flip an open breaker —
        only the half-open trial decides."""
        breaker = CircuitBreaker("log", failure_threshold=2,
                                 cooldown_ops=5)
        trip(breaker)
        breaker.record_success()
        assert breaker.is_open
        breaker.record_failure()
        assert breaker.is_open
        assert breaker.trips == 1

    def test_success_resets_failure_streak_after_reclose(self):
        breaker = CircuitBreaker("log", failure_threshold=2,
                                 cooldown_ops=1)
        trip(breaker)
        breaker.consult()
        breaker.record_success()
        # A single failure must not re-trip a freshly closed breaker.
        breaker.record_failure()
        assert breaker.state == BreakerState.CLOSED
