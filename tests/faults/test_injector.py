"""Unit tests for the seeded fault injector."""

import numpy as np
import pytest

from repro.config import FaultConfig
from repro.errors import ConfigError
from repro.faults import (
    FAULT_ERROR,
    FAULT_GRAY,
    FAULT_TIMEOUT,
    FaultInjector,
)


def make_injector(rate=0.3, seed=7, **kwargs):
    config = FaultConfig.uniform(rate, **kwargs)
    return FaultInjector(config, np.random.default_rng(seed))


class TestConfig:
    def test_uniform_split_matches_shares(self):
        config = FaultConfig.uniform(0.1)
        assert config.error_rate == pytest.approx(0.06)
        assert config.timeout_rate == pytest.approx(0.02)
        assert config.gray_rate == pytest.approx(0.02)
        assert config.total_rate == pytest.approx(0.1)
        assert config.enabled

    def test_zero_rate_is_disabled(self):
        config = FaultConfig.uniform(0.0)
        assert not config.enabled
        assert not FaultInjector(
            config, np.random.default_rng(0)
        ).enabled

    def test_rate_out_of_range_rejected(self):
        with pytest.raises(ConfigError):
            FaultConfig.uniform(-0.1)
        with pytest.raises(ConfigError):
            FaultConfig.uniform(1.0)

    def test_validate_rejects_bad_fields(self):
        with pytest.raises(ConfigError):
            FaultConfig(enabled=True, error_rate=0.6,
                        timeout_rate=0.3, gray_rate=0.2).validate()
        with pytest.raises(ConfigError):
            FaultConfig(enabled=True, gray_rate=0.1,
                        gray_factor=0.5).validate()


class TestDraws:
    def test_disabled_injector_is_always_healthy(self):
        injector = make_injector(0.0)
        for _ in range(100):
            assert injector.draw("log", "log_append").healthy
        assert injector.injected_total() == 0

    def test_same_seed_same_fault_plan(self):
        plan_a = [make_injector(seed=42).draw("log", "op").kind
                  for _ in range(1)]
        # Draw full sequences from two injectors with the same seed.
        inj1, inj2 = make_injector(seed=42), make_injector(seed=42)
        seq1 = [inj1.draw("log", "op") for _ in range(500)]
        seq2 = [inj2.draw("log", "op") for _ in range(500)]
        assert seq1 == seq2
        assert plan_a[0] == seq1[0].kind

    def test_different_seeds_differ(self):
        inj1, inj2 = make_injector(seed=1), make_injector(seed=2)
        seq1 = [inj1.draw("log", "op").kind for _ in range(200)]
        seq2 = [inj2.draw("log", "op").kind for _ in range(200)]
        assert seq1 != seq2

    def test_empirical_rates_track_config(self):
        injector = make_injector(0.3, seed=3)
        kinds = [injector.draw("store", "db_read").kind
                 for _ in range(20_000)]
        n = len(kinds)
        assert kinds.count(FAULT_ERROR) / n == pytest.approx(0.18, abs=0.02)
        assert kinds.count(FAULT_TIMEOUT) / n == pytest.approx(0.06,
                                                               abs=0.01)
        assert kinds.count(FAULT_GRAY) / n == pytest.approx(0.06, abs=0.01)
        assert kinds.count(None) / n == pytest.approx(0.7, abs=0.02)

    def test_gray_decisions_inflate_latency(self):
        injector = make_injector(0.5, seed=11, gray_factor=4.0)
        grays = [d for d in (injector.draw("log", "op")
                             for _ in range(2_000))
                 if d.kind == FAULT_GRAY]
        assert grays, "expected some gray failures at rate 0.5"
        assert all(1.0 < d.latency_factor <= 4.0 for d in grays)
        # Omission faults never inflate; gray faults never omit.
        assert all(not d.omitted for d in grays)

    def test_scope_filters_services(self):
        injector = make_injector(0.8, seed=5, scope="log")
        assert injector.applies_to("log")
        assert not injector.applies_to("store")
        for _ in range(200):
            assert injector.draw("store", "db_write").healthy
        assert any(not injector.draw("log", "log_append").healthy
                   for _ in range(200))
        # Only log faults were counted.
        assert all(key.startswith("log:") for key in injector.injected)

    def test_injected_counts_by_service_and_kind(self):
        injector = make_injector(0.5, seed=9)
        for _ in range(1_000):
            injector.draw("log", "log_append")
            injector.draw("store", "db_read")
        assert injector.injected_total() == sum(
            injector.injected.values()
        )
        assert injector.injected_total() > 0
        assert any(k.startswith("log:") for k in injector.injected)
        assert any(k.startswith("store:") for k in injector.injected)
