"""RetryPolicy under the live compute plane's wall-clock dispatcher.

The localhost gateway reuses :class:`RetryPolicy` for real sleeps: the
backoff schedule that is *charged* under the DES is *slept* under the
live plane.  These tests pin the two properties that reuse depends on:

* determinism — the jitter stream is seeded, so a sim run and a live run
  with the same root seed draw the identical backoff sequence;
* boundedness — no single backoff exceeds ``max_backoff * (1 + jitter)``,
  so a live dispatcher can never over-sleep its retry budget.
"""

import numpy as np
import pytest

from repro.config import SystemConfig
from repro.faults.injector import FAULT_ERROR, FAULT_TIMEOUT
from repro.faults.retry import RetryPolicy
from repro.simulation.rng import RngRegistry


def policy_and_stream(seed):
    config = SystemConfig().with_seed(seed).validate()
    policy = RetryPolicy.from_config(config.resilience)
    # Same derivation the gateway uses for its dispatch retry jitter.
    return policy, RngRegistry(config.seed).stream("live-dispatch")


def test_backoff_sequence_identical_across_planes():
    # Two independently constructed (policy, stream) pairs — think "one
    # sim run, one live run" — must draw the same jittered schedule.
    policy_a, stream_a = policy_and_stream(seed=77)
    policy_b, stream_b = policy_and_stream(seed=77)
    schedule_a = [
        policy_a.backoff_ms(attempt, stream_a)
        for attempt in range(1, 1 + 3 * policy_a.max_attempts)
    ]
    schedule_b = [
        policy_b.backoff_ms(attempt, stream_b)
        for attempt in range(1, 1 + 3 * policy_b.max_attempts)
    ]
    assert schedule_a == schedule_b


def test_backoff_sequence_differs_across_seeds():
    policy_a, stream_a = policy_and_stream(seed=77)
    policy_b, stream_b = policy_and_stream(seed=78)
    schedule_a = [policy_a.backoff_ms(n, stream_a) for n in range(1, 9)]
    schedule_b = [policy_b.backoff_ms(n, stream_b) for n in range(1, 9)]
    assert schedule_a != schedule_b


def test_backoff_never_exceeds_jittered_cap():
    # The live dispatcher sleeps backoff_ms for real; an unbounded draw
    # would stall a worker slot.  Every attempt — far past the point the
    # exponential curve saturates — stays under the jittered cap.
    policy = RetryPolicy(
        max_attempts=5, base_backoff_ms=1.0, backoff_multiplier=3.0,
        max_backoff_ms=8.0, jitter_fraction=0.2,
    )
    rng = np.random.default_rng(0)
    cap = policy.max_backoff_ms * (1.0 + policy.jitter_fraction)
    for attempt in range(1, 64):
        assert policy.backoff_ms(attempt, rng) <= cap


def test_zero_jitter_is_exact_exponential():
    policy = RetryPolicy(
        base_backoff_ms=2.0, backoff_multiplier=2.0,
        max_backoff_ms=100.0, jitter_fraction=0.0,
    )
    rng = np.random.default_rng(0)
    assert [policy.backoff_ms(n, rng) for n in (1, 2, 3, 4)] == [
        2.0, 4.0, 8.0, 16.0,
    ]


def test_attempt_is_one_based():
    policy = RetryPolicy()
    with pytest.raises(ValueError):
        policy.backoff_ms(0, np.random.default_rng(0))


def test_worst_case_sleep_fits_op_deadline():
    # The default config's full retry walk (every attempt times out,
    # every backoff draws maximal jitter) must fit inside the op
    # deadline — otherwise the live gateway would blow its deadline by
    # construction rather than by observed slowness.
    policy = RetryPolicy.from_config(SystemConfig().validate().resilience)
    worst = 0.0
    for attempt in range(1, policy.max_attempts + 1):
        worst += policy.attempt_timeout_ms
        if attempt < policy.max_attempts:
            base = min(
                policy.max_backoff_ms,
                policy.base_backoff_ms
                * policy.backoff_multiplier ** (attempt - 1),
            )
            worst += base * (1.0 + policy.jitter_fraction)
    assert worst <= policy.op_deadline_ms


def test_fault_cost_distinguishes_timeout_from_error():
    policy = RetryPolicy(attempt_timeout_ms=10.0, error_latency_ms=1.0)
    assert policy.fault_cost_ms(FAULT_TIMEOUT) == 10.0
    assert policy.fault_cost_ms(FAULT_ERROR) == 1.0
