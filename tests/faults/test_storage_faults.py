"""Storage-side fault injection: per-component stream determinism,
independence, and the seeded link-partition schedule."""

from repro.config import StorageChaosConfig
from repro.faults.injector import FAULT_ERROR, FAULT_TIMEOUT
from repro.faults.storage import (
    COMPONENT_PARTITION,
    COMPONENT_SHARD,
    LinkPartitionSchedule,
    StorageFaultInjector,
    _component_seed,
)
from repro.harness.parallel import seed_for


def _chaos(**overrides):
    defaults = dict(
        enabled=True,
        shard_error_rate=0.1,
        shard_timeout_rate=0.1,
        partition_error_rate=0.1,
        partition_timeout_rate=0.1,
    )
    defaults.update(overrides)
    return StorageChaosConfig(**defaults)


def _draw_series(injector, kind, component, n=200):
    return [
        injector.draw(kind, component, now_ms=float(i), is_write=True).kind
        for i in range(n)
    ]


def test_component_seed_matches_sweep_derivation():
    # Same derivation the sweeps use for cell seeds: attributable AND
    # schedule-independent, hence bit-identical under --jobs N.
    assert _component_seed(11, COMPONENT_SHARD, 2) == seed_for(
        11, ("storage-faults", COMPONENT_SHARD, 2)
    )


def test_per_component_streams_deterministic_and_independent():
    a = StorageFaultInjector(_chaos(), 11, num_shards=3, num_partitions=2)
    b = StorageFaultInjector(_chaos(), 11, num_shards=3, num_partitions=2)
    for kind, count in ((COMPONENT_SHARD, 3), (COMPONENT_PARTITION, 2)):
        for i in range(count):
            assert _draw_series(a, kind, i) == _draw_series(b, kind, i)
    # Distinct components see distinct plans, and a different base seed
    # reshuffles everything.
    fresh = StorageFaultInjector(
        _chaos(), 11, num_shards=3, num_partitions=2
    )
    assert (_draw_series(fresh, COMPONENT_SHARD, 0)
            != _draw_series(fresh, COMPONENT_SHARD, 1))
    reseeded = StorageFaultInjector(
        _chaos(), 12, num_shards=3, num_partitions=2
    )
    baseline = StorageFaultInjector(
        _chaos(), 11, num_shards=3, num_partitions=2
    )
    assert (_draw_series(reseeded, COMPONENT_SHARD, 0)
            != _draw_series(baseline, COMPONENT_SHARD, 0))


def test_draws_on_one_component_leave_others_untouched():
    a = StorageFaultInjector(_chaos(), 7, num_shards=2, num_partitions=1)
    b = StorageFaultInjector(_chaos(), 7, num_shards=2, num_partitions=1)
    _draw_series(a, COMPONENT_SHARD, 0, n=500)  # burn shard 0's stream
    # Shard 1 and the partition are unperturbed.
    assert (_draw_series(a, COMPONENT_SHARD, 1)
            == _draw_series(b, COMPONENT_SHARD, 1))
    assert (_draw_series(a, COMPONENT_PARTITION, 0)
            == _draw_series(b, COMPONENT_PARTITION, 0))


def test_injected_counters_are_attributable():
    injector = StorageFaultInjector(
        _chaos(), 3, num_shards=2, num_partitions=2
    )
    _draw_series(injector, COMPONENT_SHARD, 1, n=400)
    _draw_series(injector, COMPONENT_PARTITION, 0, n=400)
    assert injector.injected_total() > 0
    for label in injector.injected:
        service, kind, placement = label.split(":")
        assert service in ("log", "store")
        assert kind in (FAULT_ERROR, FAULT_TIMEOUT, "netsplit")
        assert placement in ("shard=1", "partition=0")


def test_link_schedule_is_pure_function_of_seed():
    cfg = _chaos(partition_windows=6, partition_horizon_ms=4000.0)
    sched_a = LinkPartitionSchedule(cfg, 11, num_shards=3, num_partitions=2)
    sched_b = LinkPartitionSchedule(cfg, 11, num_shards=3, num_partitions=2)
    assert sched_a.windows == sched_b.windows
    assert len(sched_a) == 6
    sched_c = LinkPartitionSchedule(cfg, 12, num_shards=3, num_partitions=2)
    assert sched_a.windows != sched_c.windows
    for w in sched_a.windows:
        assert w.end_ms - w.start_ms == cfg.partition_window_ms
        if w.kind == COMPONENT_PARTITION:
            # There is no metalog↔partition link to sever.
            assert w.side == "worker"


def test_metalog_side_windows_sever_writes_only():
    cfg = _chaos(partition_windows=40, partition_horizon_ms=4000.0)
    sched = LinkPartitionSchedule(cfg, 5, num_shards=2, num_partitions=1)
    metalog_windows = [w for w in sched.windows if w.side == "metalog"]
    assert metalog_windows  # 40 windows: the 35% branch certainly fired
    w = metalog_windows[0]
    mid = (w.start_ms + w.end_ms) / 2
    assert sched.severed(mid, w.kind, w.component, is_write=True)
    assert not sched.severed(mid, w.kind, w.component, is_write=False)
    # Worker-side windows sever both directions.
    worker_windows = [
        w for w in sched.windows if w.side == "worker"
    ]
    w = worker_windows[0]
    mid = (w.start_ms + w.end_ms) / 2
    assert sched.severed(mid, w.kind, w.component, is_write=False)


def test_netsplit_draws_consume_no_rng():
    """A severed-link timeout must not perturb the per-component
    streams: draws made entirely inside windows consume nothing, so a
    post-horizon series matches a schedule-free injector from draw 0."""
    cfg = _chaos(partition_windows=8, partition_horizon_ms=1000.0,
                 partition_window_ms=100.0)
    windowed = StorageFaultInjector(cfg, 9, num_shards=2, num_partitions=1)
    w = next(x for x in windowed.schedule.windows
             if x.kind == COMPONENT_SHARD)
    mid = (w.start_ms + w.end_ms) / 2
    for _ in range(50):
        decision = windowed.draw(w.kind, w.component, mid, is_write=True)
        assert decision.kind == FAULT_TIMEOUT
    assert windowed.injected[f"log:netsplit:shard={w.component}"] == 50
    # Every window closes by the horizon; from there the windowed
    # injector's stream must sit where a plain one starts.
    plain = StorageFaultInjector(
        _chaos(), 9, num_shards=2, num_partitions=1
    )
    series_w = [
        windowed.draw(w.kind, w.component, 1000.0 + i, True).kind
        for i in range(100)
    ]
    series_p = [
        plain.draw(w.kind, w.component, 1000.0 + i, True).kind
        for i in range(100)
    ]
    assert series_w == series_p


def test_draw_placement_routes_and_ignores_unknown():
    injector = StorageFaultInjector(
        _chaos(), 4, num_shards=1, num_partitions=1
    )
    assert injector.draw_placement(None, 0.0, True).kind is None
    assert injector.draw_placement(("node", 3), 0.0, True).kind is None
    kinds = {
        injector.draw_placement(
            (COMPONENT_SHARD, 0), float(i), True
        ).kind
        for i in range(200)
    }
    assert kinds & {FAULT_ERROR, FAULT_TIMEOUT}


def test_disabled_config_is_inert():
    injector = StorageFaultInjector(
        StorageChaosConfig(), 2, num_shards=2, num_partitions=2
    )
    assert not injector.enabled
    for i in range(100):
        decision = injector.draw(
            COMPONENT_SHARD, 0, now_ms=float(i), is_write=True
        )
        assert decision.kind is None
    assert injector.injected_total() == 0
