"""Property-based tests of the substrate invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sharedlog import SharedLog
from repro.store import GENESIS_VERSION, KVStore

TAGS = ("a", "b", "c")

log_ops = st.lists(
    st.tuples(
        st.sets(st.sampled_from(TAGS), min_size=1, max_size=3),
        st.integers(min_value=0, max_value=512),
    ),
    min_size=1,
    max_size=30,
)


@given(ops=log_ops)
@settings(max_examples=60, deadline=None)
def test_shared_log_matches_reference_model(ops):
    """read_prev/read_next agree with a naive reference implementation."""
    log = SharedLog()
    reference = []  # (seqnum, tags)
    for tags, payload in ops:
        seqnum = log.append(sorted(tags), {"p": payload}, payload)
        reference.append((seqnum, tags))

    max_seq = log.tail_seqnum
    for tag in TAGS:
        tagged = [s for s, tags in reference if tag in tags]
        for probe in range(0, max_seq + 2):
            expected_prev = max(
                (s for s in tagged if s <= probe), default=None
            )
            record = log.read_prev(tag, probe)
            assert (record.seqnum if record else None) == expected_prev
            expected_next = min(
                (s for s in tagged if s >= probe), default=None
            )
            record = log.read_next(tag, probe)
            assert (record.seqnum if record else None) == expected_next


@given(ops=log_ops, trim_fraction=st.floats(0.0, 1.0))
@settings(max_examples=40, deadline=None)
def test_storage_accounting_is_exact(ops, trim_fraction):
    log = SharedLog(meta_bytes=48)
    for tags, payload in ops:
        log.append(sorted(tags), {"p": payload}, payload)
    # Trim a prefix of one tag.
    horizon = int(log.tail_seqnum * trim_fraction)
    log.trim("a", horizon)
    # Recompute expected storage from live records.
    expected = sum(
        48 + record.payload_bytes
        for seq in range(1, log.tail_seqnum + 1)
        for record in [log._records.get(seq)]
        if record is not None
    )
    assert log.storage_bytes() == expected


version_tuples = st.tuples(
    st.integers(min_value=0, max_value=20),
    st.integers(min_value=0, max_value=5),
)


@given(writes=st.lists(version_tuples, min_size=1, max_size=25))
@settings(max_examples=60, deadline=None)
def test_conditional_put_version_is_monotone(writes):
    """However conditional writes interleave, the stored version never
    decreases and equals the running max of accepted versions."""
    kv = KVStore()
    accepted_max = None
    for version in writes:
        applied = kv.conditional_put("k", version, version)
        if accepted_max is None or version > accepted_max:
            assert applied
            accepted_max = version
        else:
            assert not applied
        _, stored = kv.get_with_version("k")
        assert stored == accepted_max


@given(
    entries=st.lists(
        st.tuples(st.sampled_from(["x", "y"]), st.text("ab", min_size=1,
                                                       max_size=4),
                  st.integers()),
        min_size=1, max_size=20,
    )
)
@settings(max_examples=40, deadline=None)
def test_multiversion_store_never_loses_versions(entries):
    from repro.store import MultiVersionStore

    mv = MultiVersionStore(KVStore())
    expected = {}
    for key, version, value in entries:
        mv.write_version(key, version, value)
        expected[(key, version)] = value
    for (key, version), value in expected.items():
        assert mv.read_version(key, version) == value
    for key in {k for k, _ in expected}:
        assert sorted(mv.list_versions(key)) == sorted(
            {v for k, v in expected if k == key}
        )
