"""Integration: instance crash composed with node failure.

The hardest recovery sequence the paper's fault model allows: an SSF
attempt dies at a checkpoint (instance crash), its retry is stranded by
the hosting *node* dying, the lease expires, and a surviving node takes
the orphan over.  The invocation must complete exactly once — the final
counter value reflects a single increment — for every logged protocol.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.config import SystemConfig
from repro.harness.platform import SimPlatform
from repro.runtime.failures import ScriptedCrashes
from repro.runtime.ops import ComputeOp, ReadOp, WriteOp
from repro.workloads.base import Request, Workload


class OneShotWorkload(Workload):
    """Registers the bump function but generates no open-loop traffic;
    the test spawns the single invocation explicitly."""

    name = "one-shot"

    def register(self, runtime) -> None:
        def bump(key):
            value = yield ReadOp(key)
            yield ComputeOp(30.0)
            yield WriteOp(key, value + 1)
            return value + 1

        def probe(ctx, key):
            return ctx.read(key)

        runtime.register("bump", bump)
        runtime.register("probe", probe)

    def populate(self, runtime) -> None:
        runtime.populate("k", 0)

    def next_request(self, rng: np.random.Generator) -> Request:
        return Request("bump", "k")

    def read_write_profile(self):
        return (1.0, 1.0)


def run_composed_failure(protocol: str):
    base = SystemConfig().with_node_recovery(
        lease_ms=50.0,
        heartbeat_interval_ms=10.0,
        detector_poll_ms=5.0,
        restart_delay_ms=10_000.0,
    )
    cfg = replace(
        base,
        cluster=replace(base.cluster, function_nodes=2,
                        workers_per_node=2),
    ).validate()
    platform = SimPlatform(OneShotWorkload(), protocol, config=cfg)
    # Attempt 1 dies at its second checkpoint (instance crash)...
    platform.runtime.crash_policy = ScriptedCrashes({1: 2})
    # ...and attempt 2 is stranded mid-compute by its node dying.
    platform.schedule_node_crash(10.0, node_id=0)
    platform._spawn_invocation(Request("bump", "k"), 0.0)
    # Effectively no open-loop arrivals; run long enough for lease
    # expiry plus the takeover replay.
    result = platform.run(rate_per_s=1e-9, duration_ms=1.0,
                          drain_ms=6_000.0)
    return platform, result


@pytest.mark.parametrize(
    "protocol", ["boki", "halfmoon-read", "halfmoon-write"]
)
def test_instance_crash_then_node_death_recovers_exactly_once(protocol):
    platform, result = run_composed_failure(protocol)
    assert result.node_crashes == 1
    assert result.orphaned_invocations == 1
    assert result.recovered_orphans == 1
    assert result.completed == 1
    assert result.crashed_attempts >= 1  # the scripted instance crash
    # Exactly once: a single increment survives the composed failures.
    assert platform.runtime.invoke("probe", "k").output == 1
    # The takeover landed on the survivor: node 0 was dead throughout
    # the replay (restart_delay_ms puts its return after completion).
    assert result.takeover_ms.count == 1
    assert result.takeover_ms.mean() >= 50.0 - 10.0  # ≥ lease − heartbeat
    # Tracker is clean: nothing still pinned.
    assert platform.runtime.tracker.orphan_count == 0
    assert platform.runtime.tracker.running_count == 0


@pytest.mark.parametrize("protocol", ["boki", "halfmoon-write"])
def test_tracker_pins_gc_until_takeover(protocol):
    """While the orphan is pending, the GC frontier must not advance
    past its init cursorTS (the takeover still needs that state)."""
    base = SystemConfig().with_node_recovery(
        lease_ms=2_000.0,           # long lease: orphan stays pending
        heartbeat_interval_ms=100.0,
        detector_poll_ms=50.0,
        restart_delay_ms=60_000.0,
    )
    cfg = replace(
        base,
        cluster=replace(base.cluster, function_nodes=2,
                        workers_per_node=2),
    ).validate()
    platform = SimPlatform(OneShotWorkload(), protocol, config=cfg)
    platform.schedule_node_crash(10.0, node_id=0)
    platform._spawn_invocation(Request("bump", "k"), 0.0)
    # Stop before the lease expires: the orphan is still pending.
    platform.sim.process(platform._arrival_process(1e-9, 1.0))
    if platform.lease is not None:
        platform.lease.start()
    platform.sim.run(until=1_000.0)
    tracker = platform.runtime.tracker
    assert tracker.orphan_count == 1
    pinned = tracker.safe_seqnum(
        log_frontier=platform.runtime.backend.log.next_seqnum
    )
    assert pinned <= min(tracker.orphans().values())
