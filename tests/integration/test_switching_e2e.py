"""End-to-end protocol switching under live traffic and crashes."""

import numpy as np
import pytest

from repro import BernoulliCrashes, LocalRuntime, SystemConfig
from repro.workloads import MixedRatioWorkload


def build(initial="halfmoon-write", seed=7, crash_f=0.0):
    runtime = LocalRuntime(
        SystemConfig(seed=seed), protocol=initial, enable_switching=True
    )
    if crash_f:
        runtime.crash_policy = BernoulliCrashes(
            crash_f, runtime.backend.rng.stream("crashes"), horizon=25
        )
    runtime.populate("counter", 0)
    runtime.register("increment", lambda ctx, inp: (
        ctx.write("counter", ctx.read("counter") + 1)
    ))
    runtime.register("probe", lambda ctx, inp: ctx.read("counter"))
    return runtime


def test_counter_survives_switch_cycle():
    runtime = build()
    for _ in range(5):
        runtime.invoke("increment")
    runtime.begin_switch("halfmoon-read")
    for _ in range(5):
        runtime.invoke("increment")
    runtime.begin_switch("halfmoon-write")
    for _ in range(5):
        runtime.invoke("increment")
    assert runtime.invoke("probe").output == 15


def test_counter_survives_switch_with_crashes():
    runtime = build(crash_f=0.3)
    for phase_target in ("halfmoon-read", "halfmoon-write",
                         "halfmoon-read"):
        for _ in range(6):
            runtime.invoke("increment")
        runtime.begin_switch(phase_target)
    for _ in range(6):
        runtime.invoke("increment")
    assert runtime.crash_policy.crashes_fired > 0
    assert runtime.invoke("probe").output == 24


def test_mixed_workload_through_switches():
    runtime = LocalRuntime(
        SystemConfig(seed=13), protocol="halfmoon-write",
        enable_switching=True,
    )
    workload = MixedRatioWorkload(0.2, num_keys=30)
    workload.register(runtime)
    workload.populate(runtime)
    rng = np.random.default_rng(3)

    last_values = {}

    def run_batch(n):
        for _ in range(n):
            request = workload.next_request(rng)
            runtime.invoke(request.func_name, request.input)
            for kind, key, value in request.input["ops"]:
                if kind == "w":
                    last_values[key] = value

    run_batch(10)
    workload.read_ratio_value = 0.8
    runtime.begin_switch("halfmoon-read")
    run_batch(10)
    workload.read_ratio_value = 0.2
    runtime.begin_switch("halfmoon-write")
    run_batch(10)

    # Every key's visible value is the last value written to it.
    probe = runtime.open_session().init()
    for key, expected in last_values.items():
        assert probe.read(key) == expected, key
    probe.finish()


def test_in_flight_invocation_spanning_switch():
    """An SSF that starts before BEGIN and finishes after END-candidates
    keeps its protocol and its effects are preserved."""
    runtime = build()
    runtime.invoke("increment")  # counter = 1
    straggler = runtime.open_session().init()
    value = straggler.read("counter")
    runtime.begin_switch("halfmoon-read")
    assert runtime.switch_manager.in_progress  # waiting on the straggler
    # New invocations during the window still work (transitional).
    runtime.invoke("increment")
    straggler.write("counter", value + 1)  # lost update is acceptable:
    straggler.finish()                      # non-transactional semantics
    assert not runtime.switch_manager.in_progress
    # After the switch the counter is readable under the new protocol.
    final = runtime.invoke("probe").output
    assert final >= 2


def test_gc_and_switching_compose():
    runtime = build()
    for _ in range(4):
        runtime.invoke("increment")
    runtime.run_gc()
    runtime.begin_switch("halfmoon-read")
    for _ in range(4):
        runtime.invoke("increment")
    runtime.run_gc()
    assert runtime.invoke("probe").output == 8
