"""Property-based exactly-once tests.

Hypothesis generates arbitrary operation programs and crash points; for
every logged protocol the crashed-and-replayed execution must be
indistinguishable (output and final state) from a crash-free run.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import CrashOnceAtEvery, LocalRuntime, SystemConfig
from tests.conftest import PROTOCOLS

KEYS = ("k0", "k1", "k2")

#: A program is a list of (op, key) pairs; values derive from a counter
#: so every write is distinguishable.
programs = st.lists(
    st.tuples(st.sampled_from(["r", "w"]), st.sampled_from(KEYS)),
    min_size=1,
    max_size=6,
)

crash_points = st.integers(min_value=1, max_value=30)


def make_runtime(protocol, crash_policy=None):
    runtime = LocalRuntime(
        SystemConfig(seed=99), protocol=protocol,
        crash_policy=crash_policy,
    )
    for key in KEYS:
        runtime.populate(key, 0)

    def program_fn(ctx, ops):
        outputs = []
        counter = 0
        for kind, key in ops:
            if kind == "r":
                outputs.append(ctx.read(key))
            else:
                counter += 1
                ctx.write(key, counter * 1000 + len(outputs))
        return tuple(outputs)

    runtime.register("program", program_fn)
    runtime.register(
        "probe", lambda ctx, inp: tuple(ctx.read(k) for k in KEYS)
    )
    return runtime


def run_program(protocol, ops, crash_policy=None):
    runtime = make_runtime(protocol, crash_policy)
    result = runtime.invoke("program", list(ops))
    state = runtime.invoke("probe").output
    return result.output, state


@pytest.mark.parametrize("protocol", PROTOCOLS)
@given(ops=programs, crash_at=crash_points)
@settings(max_examples=40, deadline=None)
def test_crashed_run_equals_clean_run(protocol, ops, crash_at):
    clean_output, clean_state = run_program(protocol, ops)
    crashed_output, crashed_state = run_program(
        protocol, ops, CrashOnceAtEvery(crash_at)
    )
    assert crashed_output == clean_output
    assert crashed_state == clean_state


@pytest.mark.parametrize("protocol", PROTOCOLS)
@given(ops=programs)
@settings(max_examples=25, deadline=None)
def test_full_replay_leaves_state_untouched(protocol, ops):
    """Replaying a *completed* invocation (zombie instance) must change
    neither the state nor the step log."""
    runtime = make_runtime(protocol)
    result = runtime.invoke("program", list(ops))
    state_before = runtime.invoke("probe").output
    appends_before = runtime.backend.log.append_count
    writes_before = runtime.backend.kv.write_count

    replayed = runtime.invoke(
        "program", list(ops), instance_id=result.instance_id
    )
    assert replayed.output == result.output
    # Check log growth before probing (the probe itself logs its reads).
    assert runtime.backend.log.append_count == appends_before
    assert runtime.invoke("probe").output == state_before
    # Halfmoon-write re-issues conditional updates on replay (they are
    # rejected); the others skip the store entirely.
    if protocol != "halfmoon-write":
        assert runtime.backend.kv.write_count == writes_before
