"""Property-based consistency tests (Propositions 4.7 and 4.8).

Hypothesis generates random interleavings of concurrent SSFs; the
recorded history must validate against the protocol's derived effective
order, and for Halfmoon-read a sequentially consistent witness must
exist.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import LocalRuntime, SystemConfig
from repro.consistency import (
    History,
    TracedSession,
    commutable_log_free_writes,
    find_sequential_witness,
    halfmoon_read_order,
    halfmoon_write_order,
    validate_total_order,
)

KEYS = ("x", "y")

#: An interleaving step: (session index, op kind, key index).
steps = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=2),
        st.sampled_from(["r", "w"]),
        st.integers(min_value=0, max_value=len(KEYS) - 1),
    ),
    min_size=1,
    max_size=7,
)


def run_interleaving(protocol, interleaving, seed=17):
    runtime = LocalRuntime(SystemConfig(seed=seed), protocol=protocol)
    for key in KEYS:
        runtime.populate(key, 0)
    history = History(initial_values={key: 0 for key in KEYS})
    sessions = {}
    counter = 0
    for session_index, kind, key_index in interleaving:
        if session_index not in sessions:
            sessions[session_index] = TracedSession(
                runtime.open_session(), history, f"P{session_index}"
            ).init()
        session = sessions[session_index]
        key = KEYS[key_index]
        if kind == "r":
            session.read(key)
        else:
            counter += 1
            session.write(key, counter)
    return history


@given(interleaving=steps)
@settings(max_examples=60, deadline=None)
def test_halfmoon_read_is_sequentially_consistent(interleaving):
    history = run_interleaving("halfmoon-read", interleaving)
    order = halfmoon_read_order(history)
    validate_total_order(history, order)
    # And an SC witness exists for the bare history.
    if len(history) <= 8:
        assert find_sequential_witness(history) is not None


@given(interleaving=steps)
@settings(max_examples=60, deadline=None)
def test_halfmoon_write_order_is_valid(interleaving):
    history = run_interleaving("halfmoon-write", interleaving)
    order = halfmoon_write_order(history)
    validate_total_order(
        history, order, allow_reorder=commutable_log_free_writes
    )


@given(interleaving=steps)
@settings(max_examples=40, deadline=None)
def test_boki_histories_are_sequentially_consistent(interleaving):
    """The symmetric baseline reads latest and writes conditionally; its
    histories admit an SC witness too (reads are real-time)."""
    history = run_interleaving("boki", interleaving)
    if len(history) <= 8:
        assert find_sequential_witness(history) is not None


@given(interleaving=steps)
@settings(max_examples=40, deadline=None)
def test_halfmoon_read_repeatable_reads(interleaving):
    """Within one SSF, reads of a key with no interleaved own-logging are
    repeatable: derive from the recorded history."""
    history = run_interleaving("halfmoon-read", interleaving)
    for process in history.processes():
        program = history.program_order(process)
        for a, b in zip(program, program[1:]):
            if (a.kind == "read" and b.kind == "read"
                    and a.key == b.key
                    and a.logical_ts == b.logical_ts):
                assert a.value == b.value
