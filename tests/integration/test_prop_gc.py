"""Property-based GC safety: collection never breaks visibility.

Hypothesis drives random mixes of invocations, long-running sessions, and
GC scans; afterwards every still-running SSF must read exactly what it
would have read had GC never run, and the latest committed value must
survive for future SSFs.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import LocalRuntime, SystemConfig

KEYS = ("a", "b")

#: Actions: ("invoke", key) write through a fresh invocation;
#: ("open", key) open a long-running session and snapshot-read key;
#: ("close", i) finish the i-th open session; ("gc",) run a GC scan.
actions = st.lists(
    st.one_of(
        st.tuples(st.just("invoke"), st.sampled_from(KEYS)),
        st.tuples(st.just("open"), st.sampled_from(KEYS)),
        st.tuples(st.just("close"), st.integers(0, 5)),
        st.tuples(st.just("gc")),
    ),
    min_size=3,
    max_size=18,
)


@given(script=actions)
@settings(max_examples=60, deadline=None)
def test_gc_never_breaks_snapshot_reads(script):
    runtime = LocalRuntime(SystemConfig(seed=23),
                           protocol="halfmoon-read")
    for key in KEYS:
        runtime.populate(key, "init")

    def writer(ctx, inp):
        ctx.write(inp["key"], inp["value"])
        return None

    runtime.register("writer", writer)

    open_sessions = []  # (session, key, first_value)
    counter = 0
    for action in script:
        if action[0] == "invoke":
            counter += 1
            runtime.invoke(
                "writer", {"key": action[1], "value": f"v{counter}"}
            )
        elif action[0] == "open":
            session = runtime.open_session().init()
            value = session.read(action[1])
            open_sessions.append((session, action[1], value))
        elif action[0] == "close":
            if open_sessions:
                index = action[1] % len(open_sessions)
                session, key, first = open_sessions.pop(index)
                # Snapshot stability right up to finish.
                assert session.read(key) == first
                session.finish()
        else:
            runtime.run_gc()
            # Every open session must still see its snapshot value.
            for session, key, first in open_sessions:
                assert session.read(key) == first

    # Drain the remaining sessions, re-checking stability.
    for session, key, first in open_sessions:
        assert session.read(key) == first
        session.finish()

    # After a final GC, a fresh SSF reads the latest committed values.
    runtime.run_gc()
    latest = {}
    for key in KEYS:
        probe = runtime.open_session().init()
        latest[key] = probe.read(key)
        probe.finish()
    # Re-derive the expected latest value from the write history.
    expected = {key: "init" for key in KEYS}
    counter = 0
    for action in script:
        if action[0] == "invoke":
            counter += 1
            expected[action[1]] = f"v{counter}"
    assert latest == expected


@given(script=actions)
@settings(max_examples=30, deadline=None)
def test_gc_storage_never_negative_and_bounded(script):
    runtime = LocalRuntime(SystemConfig(seed=29),
                           protocol="halfmoon-read")
    for key in KEYS:
        runtime.populate(key, "init")
    runtime.register(
        "writer", lambda ctx, inp: ctx.write(inp["key"], inp["value"])
    )
    counter = 0
    for action in script:
        if action[0] == "invoke":
            counter += 1
            runtime.invoke(
                "writer", {"key": action[1], "value": f"v{counter}"}
            )
        elif action[0] == "gc":
            runtime.run_gc()
        usage = runtime.storage_bytes()
        assert usage["log"] >= 0 and usage["db"] >= 0
    runtime.run_gc()
    # With nothing running, at most one version + write-log record per
    # key survives (plus nothing else).
    for key in KEYS:
        assert runtime.backend.mv.version_count(key) == 1
