"""End-to-end application runs with crash injection.

Drives the three realistic workloads through the direct runtime under
every logged protocol with probabilistic crash injection, then verifies
application-level invariants that only hold under exactly-once semantics.
"""

import numpy as np
import pytest

from repro import BernoulliCrashes, LocalRuntime, SystemConfig
from repro.workloads import (
    MovieReviewWorkload,
    RetwisWorkload,
    TravelReservationWorkload,
)
from repro.workloads.movie import movie_reviews_key, rating_key
from repro.workloads.retwis import posts_key, timeline_key
from repro.workloads.travel import availability_key, user_key
from tests.conftest import PROTOCOLS


def build(workload, protocol, seed=101, crash_f=0.25):
    runtime = LocalRuntime(SystemConfig(seed=seed), protocol=protocol)
    runtime.crash_policy = BernoulliCrashes(
        crash_f, runtime.backend.rng.stream("crashes"), horizon=30
    )
    workload.register(runtime)
    workload.populate(runtime)
    return runtime


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_travel_reservations_exactly_once(protocol):
    workload = TravelReservationWorkload(
        num_hotels=6, num_users=8, num_regions=2, reserve_fraction=1.0
    )
    runtime = build(workload, protocol)
    rng = np.random.default_rng(55)
    reserved = 0
    crashed_before = runtime.crash_policy.crashes_fired
    for _ in range(25):
        request = workload.next_request(rng)
        result = runtime.invoke(request.func_name, request.input)
        reserved += result.output["status"] == "reserved"
    assert runtime.crash_policy.crashes_fired > 0, "no crashes injected"

    probe = runtime.open_session().init()
    rooms_taken = sum(
        50 - probe.read(availability_key(i)) for i in range(6)
    )
    trips = sum(probe.read(user_key(u))["trips"] for u in range(8))
    probe.finish()
    # Every successful reservation decremented exactly one room and
    # recorded exactly one trip — no duplicates despite the crashes.
    assert rooms_taken == reserved
    assert trips == reserved


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_movie_reviews_exactly_once(protocol):
    workload = MovieReviewWorkload(
        num_movies=4, num_users=5, compose_fraction=1.0
    )
    runtime = build(workload, protocol)
    rng = np.random.default_rng(66)
    stars_posted = []
    movies_hit = []
    for _ in range(20):
        request = workload.next_request(rng)
        result = runtime.invoke(request.func_name, request.input)
        assert result.output["status"] == "posted"
        stars_posted.append(request.input["stars"])
        movies_hit.append(request.input["movie"])
    assert runtime.crash_policy.crashes_fired > 0

    probe = runtime.open_session().init()
    total_counted = 0
    total_sum = 0
    review_list_lengths = 0
    for m in range(4):
        agg = probe.read(rating_key(m))
        total_counted += agg["count"]
        total_sum += agg["sum"]
        review_list_lengths += len(probe.read(movie_reviews_key(m)))
    probe.finish()
    assert total_counted == len(stars_posted)
    assert total_sum == sum(stars_posted)
    assert review_list_lengths == len(stars_posted)


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_retwis_posts_exactly_once(protocol):
    workload = RetwisWorkload(
        num_users=6, post_fraction=1.0, timeline_fraction=0.0,
        profile_fraction=0.0,
    )
    runtime = build(workload, protocol)
    rng = np.random.default_rng(77)
    tweet_ids = []
    for _ in range(15):
        request = workload.next_request(rng)
        result = runtime.invoke(request.func_name, request.input)
        tweet_ids.append(result.output)
    assert runtime.crash_policy.crashes_fired > 0

    # Tweet ids are unique (the shared counter was never double-applied)…
    assert len(set(tweet_ids)) == len(tweet_ids)
    probe = runtime.open_session().init()
    assert probe.read("rpost-counter") == len(tweet_ids)
    # …and the timeline contains each exactly once.
    timeline = probe.read(timeline_key())
    assert sorted(timeline) == sorted(tweet_ids)
    total_posts = sum(
        len(probe.read(posts_key(u))) for u in range(6)
    )
    probe.finish()
    assert total_posts == len(tweet_ids)


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_gc_during_live_traffic_preserves_correctness(protocol):
    workload = RetwisWorkload(num_users=5)
    runtime = build(workload, protocol, crash_f=0.1)
    rng = np.random.default_rng(88)
    for i in range(40):
        request = workload.next_request(rng)
        runtime.invoke(request.func_name, request.input)
        if i % 5 == 4:
            runtime.run_gc()
    # Storage was actually reclaimed...
    assert runtime.gc.stats.total_trimmed() > 0
    # ...and the data remains readable and self-consistent.
    probe = runtime.open_session().init()
    timeline = probe.read(timeline_key())
    for tweet_id in timeline[-5:]:
        tweet = probe.read(f"rtweet{tweet_id:07d}")
        assert tweet["author"] in range(5)
    probe.finish()
