"""Exact-sum latency-breakdown tests."""

import pytest

from repro.errors import SimulationError
from repro.observe import (
    STAGES,
    LatencyBreakdown,
    breakdown_table,
    stage_of,
)


class TestStageMapping:
    def test_cost_kinds_map_to_stages(self):
        assert stage_of("log_append") == "log_append"
        assert stage_of("log_append_overlapped") == "log_append"
        assert stage_of("log_read") == "log_read"
        assert stage_of("db_cond_write") == "store"
        assert stage_of("compute") == "compute"
        assert stage_of("retry_backoff") == "retries"
        assert stage_of("service_timeout") == "retries"

    def test_platform_segments_map_to_stages(self):
        assert stage_of("queue_wait") == "queueing"
        assert stage_of("log_queue_wait") == "queueing"
        assert stage_of("takeover_gap") == "recovery"
        assert stage_of("failure_detection") == "recovery"

    def test_unknown_kind_is_other(self):
        assert stage_of("child") == "other"
        assert stage_of("???") == "other"


class TestExactSums:
    def _sample(self) -> LatencyBreakdown:
        bd = LatencyBreakdown("test")
        bd.record({"queue_wait": 2.0, "log_append": 3.0,
                   "compute": 5.0})
        bd.record({"queue_wait": 1.0, "db_read": 4.0,
                   "retry_backoff": 2.0})
        bd.record({"log_read": 6.0, "compute": 6.0})
        return bd

    def test_stage_means_sum_to_total_mean(self):
        bd = self._sample()
        total = sum(bd.stage_mean(stage) for stage in STAGES)
        assert total == pytest.approx(bd.total_mean(), rel=1e-12)

    def test_median_attributed_sums_to_total_median(self):
        bd = self._sample()
        attributed = sum(
            bd.median_attributed(stage) for stage in STAGES
        )
        assert attributed == pytest.approx(
            bd.total_median(), rel=1e-12
        )

    def test_record_entries_aggregates_duplicates(self):
        bd = LatencyBreakdown()
        bd.record_entries(
            [("log_append", 1.0), ("log_append", 2.0),
             ("db_write", 4.0)],
            extra={"queue_wait": 0.5},
        )
        assert bd.stage_mean("log_append") == 3.0
        assert bd.stage_mean("store") == 4.0
        assert bd.stage_mean("queueing") == 0.5
        assert bd.total_mean() == 7.5

    def test_negative_contribution_rejected(self):
        bd = LatencyBreakdown()
        with pytest.raises(SimulationError):
            bd.record({"compute": -1.0})

    def test_empty_breakdown_raises(self):
        bd = LatencyBreakdown()
        assert bd.count == 0
        with pytest.raises(SimulationError):
            bd.total_mean()
        with pytest.raises(SimulationError):
            bd.stage_mean("compute")

    def test_merged_preserves_exactness(self):
        a, b = self._sample(), self._sample()
        merged = a.merged(b)
        assert merged.count == 6
        assert a.count == 3  # originals untouched
        total = sum(merged.stage_mean(stage) for stage in STAGES)
        assert total == pytest.approx(merged.total_mean(), rel=1e-12)


class TestReporting:
    def test_rows_skip_empty_stages(self):
        bd = LatencyBreakdown()
        bd.record({"compute": 10.0})
        rows = bd.rows()
        assert [row[0] for row in rows] == ["compute"]
        assert rows[0][1] == 10.0

    def test_breakdown_table_total_matches_e2e(self):
        bd = LatencyBreakdown()
        bd.record({"compute": 4.0, "log_append": 6.0})
        bd.record({"compute": 8.0})
        table = breakdown_table({"sys": bd})
        rendered = str(table)
        assert "TOTAL" in rendered and "sys" in rendered
        total_row = next(
            row for row in table.rows if row[1] == "TOTAL"
        )
        assert total_row[2] == pytest.approx(bd.total_mean())
        assert total_row[-1] == pytest.approx(bd.total_median())

    def test_breakdown_table_handles_empty(self):
        table = breakdown_table({"sys": LatencyBreakdown()})
        assert "(no samples)" in str(table)
