"""Chrome trace-event schema tests for the exporter."""

import json

from repro.observe import (
    CAT_INVOCATION,
    CAT_SERVICE,
    Tracer,
    chrome_trace,
    chrome_trace_events,
    write_chrome_trace,
)


def _make_tracer() -> Tracer:
    tracer = Tracer()
    root = tracer.start_span(
        "invoke:f", CAT_INVOCATION, 1.0, trace_id="t1", func="f"
    )
    call = root.child("log_append", CAT_SERVICE, 1.5)
    call.annotate("retry", 2.0, attempt=2)
    call.finish(3.0)
    root.finish(4.0)
    tracer.instant("node-crash", 5.0, node=0)
    return tracer


class TestChromeTraceEvents:
    def test_complete_event_scaling(self):
        events = chrome_trace_events(_make_tracer())
        complete = [e for e in events if e["ph"] == "X"]
        root = next(e for e in complete if e["name"] == "invoke:f")
        # Simulated ms become trace-event microseconds.
        assert root["ts"] == 1000.0 and root["dur"] == 3000.0
        assert root["cat"] == CAT_INVOCATION
        assert root["args"] == {"func": "f"}

    def test_annotations_and_instants_are_instant_events(self):
        events = chrome_trace_events(_make_tracer())
        instants = {e["name"]: e for e in events if e["ph"] == "i"}
        assert instants["retry"]["ts"] == 2000.0
        assert instants["retry"]["s"] == "t"
        assert instants["retry"]["args"] == {"attempt": 2}
        assert instants["node-crash"]["args"] == {"node": 0}

    def test_one_thread_lane_per_trace_id(self):
        events = chrome_trace_events(_make_tracer())
        names = {
            e["args"]["name"]: e["tid"] for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert set(names) == {"t1", "platform"}
        spans = [e for e in events if e["ph"] == "X"]
        assert {e["tid"] for e in spans} == {names["t1"]}
        crash = next(e for e in events if e["name"] == "node-crash")
        assert crash["tid"] == names["platform"]

    def test_only_valid_phases_emitted(self):
        events = chrome_trace_events(_make_tracer())
        assert {e["ph"] for e in events} <= {"X", "i", "M"}

    def test_unfinished_span_flagged_not_dropped(self):
        tracer = Tracer()
        tracer.start_span("stuck", CAT_INVOCATION, 2.0, trace_id="t")
        (event,) = [
            e for e in chrome_trace_events(tracer) if e["ph"] == "X"
        ]
        assert event["dur"] == 0.0
        assert event["args"]["unfinished"] is True


class TestTraceObject:
    def test_top_level_shape(self):
        trace = chrome_trace(_make_tracer())
        assert trace["displayTimeUnit"] == "ms"
        assert trace["otherData"]["spans"] == 2
        assert trace["traceEvents"]

    def test_write_round_trips_as_json(self, tmp_path):
        path = tmp_path / "trace.json"
        written = write_chrome_trace(_make_tracer(), str(path))
        with open(path, encoding="utf-8") as f:
            loaded = json.load(f)
        assert loaded == written
