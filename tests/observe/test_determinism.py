"""Tracing must never perturb a run: same seed, identical numbers.

The off state is ``tracer = None`` — the instrumented code only reads
caller-supplied virtual clocks behind ``is None`` guards, so enabling
tracing may not shift a single latency sample, RNG draw, or byte
count.  These tests run the same seeded workload with tracing on and
off and require bit-identical results, then check that the traced run
actually recorded the promised span structure and annotations.
"""

import pytest

from repro import LocalRuntime, SystemConfig
from repro.harness import run_trace
from repro.observe import (
    CAT_ATTEMPT,
    CAT_INVOCATION,
    CAT_QUEUE,
    CAT_SERVICE,
    STAGES,
    Tracer,
)

BUMPS = 25


def _counter(ctx, inp):
    value = ctx.read("counter")
    ctx.write("counter", value + inp)
    return value + inp


def _direct_results(seed: int, tracing: bool, fault_rate: float = 0.0):
    config = SystemConfig(seed=seed)
    if fault_rate:
        config = config.with_fault_rate(fault_rate)
    runtime = LocalRuntime(config, protocol="halfmoon-read")
    tracer = Tracer() if tracing else None
    runtime.backend.tracer = tracer
    runtime.populate("counter", 0)
    runtime.register("bump", _counter)
    results = [runtime.invoke("bump", 1) for _ in range(BUMPS)]
    return results, tracer


class TestDirectModeDeterminism:
    def test_tracing_does_not_perturb_invocations(self):
        plain, _ = _direct_results(seed=99, tracing=False)
        traced, tracer = _direct_results(seed=99, tracing=True)
        assert [r.latency_ms for r in plain] == \
            [r.latency_ms for r in traced]
        assert [r.cost_by_kind for r in plain] == \
            [r.cost_by_kind for r in traced]
        assert [r.output for r in plain] == [r.output for r in traced]
        assert len(tracer.spans_in(CAT_INVOCATION)) == BUMPS

    def test_cost_by_kind_sums_to_latency(self):
        results, _ = _direct_results(seed=7, tracing=True,
                                     fault_rate=0.1)
        for result in results:
            assert sum(result.cost_by_kind.values()) == pytest.approx(
                result.latency_ms, rel=1e-12
            )

    def test_span_tree_shape(self):
        _, tracer = _direct_results(seed=5, tracing=True)
        root = tracer.spans_in(CAT_INVOCATION)[0]
        assert root.name == "invoke:bump"
        assert root.finished
        attempts = tracer.children_of(root)
        assert [s.category for s in attempts] == [CAT_ATTEMPT]
        calls = tracer.children_of(attempts[0])
        assert calls, "attempt recorded no service calls"
        assert {s.category for s in calls} == {CAT_SERVICE}
        for call in calls:
            assert call.start_ms >= attempts[0].start_ms
            assert call.finished

    def test_faults_annotate_service_spans(self):
        results, tracer = _direct_results(seed=11, tracing=True,
                                          fault_rate=0.3)
        names = [
            event.name
            for span in tracer.spans_in(CAT_SERVICE)
            for event in span.events
        ]
        assert any(n.startswith("fault:") for n in names)
        assert "retry" in names
        # Fault handling cost is visible in the per-kind accounting.
        kinds = set()
        for result in results:
            kinds.update(result.cost_by_kind)
        assert kinds & {"retry_backoff", "service_error",
                        "service_timeout"}


class TestPlatformDeterminism:
    KWARGS = dict(
        protocol="halfmoon-read",
        rate_per_s=300.0,
        duration_ms=2_000.0,
        seed=42,
        crash_at_ms=900.0,
    )

    @pytest.fixture(scope="class")
    def runs(self):
        traced, tracer = run_trace(tracing=True, **self.KWARGS)
        plain, none_tracer = run_trace(tracing=False, **self.KWARGS)
        assert none_tracer is None
        return traced, plain, tracer

    def test_results_bit_identical(self, runs):
        traced, plain, _ = runs
        for field in ("completed", "median_ms", "p99_ms", "mean_ms",
                      "throughput_per_s", "crashed_attempts",
                      "faulted_attempts", "node_crashes",
                      "orphaned_invocations", "recovered_orphans",
                      "avg_log_bytes", "avg_db_bytes", "counters",
                      "time_by_kind"):
            assert getattr(traced, field) == getattr(plain, field), \
                field

    def test_breakdown_sums_to_e2e_median(self, runs):
        traced, plain, _ = runs
        for result in (traced, plain):
            attributed = sum(
                result.breakdown.median_attributed(stage)
                for stage in STAGES
            )
            assert attributed == pytest.approx(result.median_ms,
                                               rel=0.01)
            assert result.breakdown.count == result.completed

    def test_metrics_snapshot_identical(self, runs):
        traced, plain, _ = runs
        assert traced.metrics == plain.metrics
        assert "request_latency" in traced.metrics
        assert traced.metrics["request_latency"]["count"] == \
            traced.completed

    def test_trace_records_recovery_pipeline(self, runs):
        _, _, tracer = runs
        assert tracer.spans_in(CAT_QUEUE), "no queue spans"
        assert tracer.spans_in(CAT_ATTEMPT), "no attempt spans"
        instant_names = {
            event.name for _tid, event in tracer.instants
        }
        assert {"node-crash", "node-declared-dead",
                "orphan-takeover"} <= instant_names
