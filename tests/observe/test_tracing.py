"""Unit tests for the span/tracer primitives."""

import pytest

from repro.errors import SimulationError
from repro.observe import (
    CAT_ATTEMPT,
    CAT_INVOCATION,
    CAT_SERVICE,
    PLATFORM_TRACE_ID,
    Tracer,
)


class TestSpanTree:
    def test_parent_child_nesting(self):
        tracer = Tracer()
        root = tracer.start_span(
            "invoke:f", CAT_INVOCATION, 0.0, trace_id="t1"
        )
        attempt = root.child("attempt-1", CAT_ATTEMPT, 1.0)
        call = attempt.child("log_append", CAT_SERVICE, 2.0)
        assert root.parent_id is None
        assert attempt.parent_id == root.span_id
        assert call.parent_id == attempt.span_id
        assert attempt.trace_id == "t1" and call.trace_id == "t1"
        assert tracer.children_of(root) == [attempt]
        assert tracer.children_of(attempt) == [call]

    def test_span_ids_unique_and_ordered(self):
        tracer = Tracer()
        spans = [
            tracer.start_span(f"s{i}", CAT_SERVICE, float(i),
                              trace_id="t")
            for i in range(5)
        ]
        ids = [s.span_id for s in spans]
        assert ids == sorted(ids) and len(set(ids)) == 5

    def test_duration_and_finish(self):
        tracer = Tracer()
        span = tracer.start_span("op", CAT_SERVICE, 10.0, trace_id="t")
        assert not span.finished
        with pytest.raises(SimulationError):
            span.duration_ms
        span.finish(12.5)
        assert span.finished
        assert span.duration_ms == pytest.approx(2.5)

    def test_double_finish_rejected(self):
        tracer = Tracer()
        span = tracer.start_span("op", CAT_SERVICE, 0.0, trace_id="t")
        span.finish(1.0)
        with pytest.raises(SimulationError):
            span.finish(2.0)

    def test_finish_before_start_rejected(self):
        tracer = Tracer()
        span = tracer.start_span("op", CAT_SERVICE, 5.0, trace_id="t")
        with pytest.raises(SimulationError):
            span.finish(4.0)

    def test_annotations(self):
        tracer = Tracer()
        span = tracer.start_span("op", CAT_SERVICE, 0.0, trace_id="t")
        span.annotate("retry", 1.0, attempt=2, backoff_ms=4.0)
        span.annotate("breaker:open", 2.0, service="log")
        names = [e.name for e in span.events]
        assert names == ["retry", "breaker:open"]
        assert span.events[0].args == {"attempt": 2, "backoff_ms": 4.0}

    def test_span_args_preserved(self):
        tracer = Tracer()
        span = tracer.start_span(
            "invoke:f", CAT_INVOCATION, 0.0, trace_id="t", func="f"
        )
        assert span.args == {"func": "f"}


class TestTracerIntrospection:
    def test_spans_for_and_in(self):
        tracer = Tracer()
        a = tracer.start_span("a", CAT_INVOCATION, 0.0, trace_id="t1")
        b = tracer.start_span("b", CAT_SERVICE, 0.0, trace_id="t2")
        c = a.child("c", CAT_SERVICE, 1.0)
        assert tracer.spans_for("t1") == [a, c]
        assert tracer.spans_in(CAT_SERVICE) == [b, c]
        assert len(tracer) == 3

    def test_instants_default_to_platform_lane(self):
        tracer = Tracer()
        tracer.instant("node-crash", 100.0, node=0)
        tracer.instant("orphan-takeover", 200.0, trace_id="inst-1")
        assert tracer.instants[0][0] == PLATFORM_TRACE_ID
        assert tracer.instants[1][0] == "inst-1"
        assert tracer.instants[0][1].args == {"node": 0}

    def test_trace_ids_first_seen_order(self):
        tracer = Tracer()
        tracer.start_span("a", CAT_INVOCATION, 0.0, trace_id="t2")
        tracer.start_span("b", CAT_INVOCATION, 0.0, trace_id="t1")
        tracer.start_span("c", CAT_SERVICE, 0.0, trace_id="t2")
        tracer.instant("x", 1.0)
        assert tracer.trace_ids() == ["t2", "t1", PLATFORM_TRACE_ID]
