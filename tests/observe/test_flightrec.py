"""Flight recorder: ring semantics, tail shipping, dump artifacts."""

from repro.observe import FlightRecorder, read_flightrec


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        self.t += 1.0
        return self.t


def test_ring_evicts_oldest_but_remembers_totals():
    rec = FlightRecorder("w", FakeClock(), capacity=4)
    for i in range(10):
        rec.record("tick", i=i)
    assert len(rec) == 4
    assert rec.recorded == 10
    events = rec.events()
    assert [e["seq"] for e in events] == [7, 8, 9, 10]
    assert [e["i"] for e in events] == [6, 7, 8, 9]


def test_tail_is_the_shipping_increment():
    rec = FlightRecorder("w", FakeClock())
    rec.record("a")
    rec.record("b")
    first = rec.tail(0)
    assert [e["kind"] for e in first] == ["a", "b"]
    rec.record("c")
    assert [e["kind"] for e in rec.tail(first[-1]["seq"])] == ["c"]
    assert rec.tail(rec.recorded) == []


def test_last_finds_most_recent_of_kind():
    rec = FlightRecorder("w", FakeClock())
    rec.record("op", seq_no=1)
    rec.record("hb")
    rec.record("op", seq_no=2)
    assert rec.last("op")["seq_no"] == 2
    assert rec.last("missing") is None


def test_dump_roundtrip_with_lanes_and_meta(tmp_path):
    rec = FlightRecorder("gateway", FakeClock())
    rec.record("sigkill", worker=2, pid=4242)
    path = rec.dump(
        str(tmp_path), "sigkill",
        meta={"worker": 2, "last_acked_op": "kv.put#7",
              "weird": object()},
        extra_lanes={"worker-2": [
            {"seq": 1, "ts_ms": 0.5, "kind": "invoke", "fn": "bump"},
        ]},
    )
    assert rec.dumps_written == 1
    assert "flightrec-gateway-sigkill-001" in path

    records = read_flightrec(path)
    header = records[0]
    assert header["kind"] == "flightrec"
    assert header["trigger"] == "sigkill"
    assert header["meta"]["last_acked_op"] == "kv.put#7"
    # Non-JSON values degrade to repr instead of failing the dump.
    assert isinstance(header["meta"]["weird"], str)
    lanes = {r["lane"] for r in records[1:]}
    assert lanes == {"gateway", "worker-2"}
    worker_events = [r for r in records[1:] if r["lane"] == "worker-2"]
    assert worker_events[0]["fn"] == "bump"


def test_dump_numbering_increments(tmp_path):
    rec = FlightRecorder("g", FakeClock())
    rec.record("x")
    p1 = rec.dump(str(tmp_path), "lease-expiry")
    p2 = rec.dump(str(tmp_path), "lease-expiry")
    assert p1.endswith("001.jsonl")
    assert p2.endswith("002.jsonl")
    assert rec.dumps_written == 2
