"""Cross-process observability: span blocks, wire codec, telemetry."""

from repro.observe import (
    CAT_ATTEMPT,
    CAT_SERVICE,
    FlightRecorder,
    MetricsRegistry,
    ParentRef,
    TelemetrySink,
    Tracer,
    WorkerTelemetry,
    absorb_wire_spans,
    make_worker_tracer,
    spans_to_wire,
)
from repro.observe.distributed import WORKER_SPAN_BLOCK


# -- span-id blocks -------------------------------------------------------


def test_reserved_blocks_are_disjoint():
    gw = Tracer()
    gw.start_span("dispatch", CAT_ATTEMPT, 0.0, "inv-1")
    base_a = gw.reserve_block(WORKER_SPAN_BLOCK)
    base_b = gw.reserve_block(WORKER_SPAN_BLOCK)
    assert base_b == base_a + WORKER_SPAN_BLOCK

    wa = make_worker_tracer(base_a)
    wb = make_worker_tracer(base_b)
    ids = set()
    for tracer, n in ((gw, 5), (wa, 5), (wb, 5)):
        for i in range(n):
            ids.add(
                tracer.start_span(f"s{i}", CAT_SERVICE, 0.0, "t").span_id
            )
    assert len(ids) == 15  # never a collision across processes


def test_wire_roundtrip_preserves_identity_and_links():
    gw = Tracer()
    dispatch = gw.start_span("dispatch", CAT_ATTEMPT, 10.0, "inv-7")
    base = gw.reserve_block(WORKER_SPAN_BLOCK)

    worker = make_worker_tracer(base)
    root = worker.start_span(
        "execute:bump", CAT_ATTEMPT, 11.0, "inv-7",
        parent=ParentRef(dispatch.span_id), proc="worker-0",
    )
    rpc_span = worker.start_span(
        "rpc:kv.put", CAT_SERVICE, 12.0, "inv-7", parent=root
    )
    rpc_span.annotate("retry", 12.5, attempt=2)
    rpc_span.finish(13.0)
    root.finish(14.0)

    absorbed = absorb_wire_spans(gw, spans_to_wire([root, rpc_span]))
    assert absorbed == 2
    by_id = {s.span_id: s for s in gw.spans}
    # Ids shipped verbatim: the cross-process parent link resolves.
    assert by_id[root.span_id].parent_id == dispatch.span_id
    assert by_id[rpc_span.span_id].parent_id == root.span_id
    assert by_id[root.span_id].trace_id == "inv-7"
    assert by_id[root.span_id].args["proc"] == "worker-0"
    event = by_id[rpc_span.span_id].events[0]
    assert (event.name, event.ts_ms, event.args["attempt"]) == (
        "retry", 12.5, 2
    )
    dispatch.finish(15.0)


# -- worker-side batching -------------------------------------------------


def test_batches_are_incremental_and_final_ships_open_spans():
    tracer = make_worker_tracer(1000)
    reg = MetricsRegistry()
    lat = reg.latency("rpc_roundtrip_ms")
    tel = WorkerTelemetry(tracer, reg)

    s1 = tracer.start_span("a", CAT_SERVICE, 0.0, "t")
    s1.finish(1.0)
    lat.record(1.0)
    lat.record(2.0)
    batch = tel.batch(10.0)
    assert [w[1] for w in batch["spans"]] == [s1.span_id]
    (_name, _labels, kind, samples), = batch["metrics"]
    assert (kind, samples) == ("latency", [1.0, 2.0])

    # Nothing new: no batch, no frame.
    assert tel.batch(20.0) is None

    # Only the delta ships on the next batch.
    lat.record(3.0)
    open_span = tracer.start_span("b", CAT_SERVICE, 2.0, "t")
    batch = tel.batch(30.0)
    (_n, _l, _k, samples), = batch["metrics"]
    assert samples == [3.0]
    assert batch["spans"] == []  # open spans withheld...

    # ...until the final drain, which always returns a dict.
    final = tel.batch(40.0, final=True)
    assert final["final"] is True
    assert [w[1] for w in final["spans"]] == [open_span.span_id]
    assert final["spans"][0][6] is None  # end_ms: still unfinished


def test_batch_ships_flightrec_tail_once():
    rec = FlightRecorder("w", lambda: 0.0)
    tel = WorkerTelemetry(None, None, rec)
    rec.record("invoke", fn="bump")
    batch = tel.batch(1.0)
    assert [e["kind"] for e in batch["flightrec"]] == ["invoke"]
    assert tel.batch(2.0) is None  # already shipped
    rec.record("done")
    assert [e["kind"] for e in tel.batch(3.0)["flightrec"]] == ["done"]


# -- gateway-side sink ----------------------------------------------------


def _latency_batch(now_ms, samples, final=False):
    return {
        "now_ms": now_ms,
        "spans": [],
        "metrics": [("rpc_roundtrip_ms", (), "latency", samples)],
        "flightrec": [],
        "final": final,
    }


def test_sink_registers_worker_labelled_series():
    reg = MetricsRegistry()
    sink = TelemetrySink(None, reg)
    sink.apply(0, _latency_batch(10.0, [1.0, 2.0]))
    sink.apply(1, _latency_batch(12.0, [5.0]))
    sink.apply(0, _latency_batch(20.0, [3.0]))  # incremental extend
    assert sink.batches == 3
    assert sink.workers() == [0, 1]

    snapshot = reg.snapshot(25.0)
    assert snapshot["rpc_roundtrip_ms{worker=0}"]["count"] == 3
    assert snapshot["rpc_roundtrip_ms{worker=1}"]["count"] == 1

    merged = sink.merged_latency("rpc_roundtrip_ms")
    assert sorted(merged.samples) == [1.0, 2.0, 3.0, 5.0]


def test_sink_counter_batches_are_cumulative_not_additive():
    reg = MetricsRegistry()
    sink = TelemetrySink(None, reg)

    def counter_batch(counts):
        return {"now_ms": 0.0, "spans": [], "flightrec": [],
                "metrics": [("ops", (), "counters", counts)],
                "final": False}

    sink.apply(0, counter_batch({"put": 2}))
    sink.apply(0, counter_batch({"put": 5, "get": 1}))
    metric = sink.worker_metric(0, "ops")
    assert metric.as_dict() == {"put": 5, "get": 1}  # replaced, not 7


def test_sink_merged_throughput_uses_shared_horizon():
    reg = MetricsRegistry()
    sink = TelemetrySink(None, reg)

    def meter_batch(count, first, last):
        return {"now_ms": last, "spans": [], "flightrec": [],
                "metrics": [("done", (), "throughput",
                             (count, first, last, 1.0))],
                "final": False}

    sink.apply(0, meter_batch(3, 100.0, 300.0))
    sink.apply(1, meter_batch(1, 150.0, 150.0))
    merged = sink.merged_throughput("done", horizon_ms=1000.0)
    assert merged.count == 4
    assert merged.rate_per_sec() == 4 * 1000.0 / 900.0


def test_sink_absorbs_spans_and_bounds_flightrec_lanes():
    gw = Tracer()
    reg = MetricsRegistry()
    sink = TelemetrySink(gw, reg)
    base = gw.reserve_block(WORKER_SPAN_BLOCK)
    worker = make_worker_tracer(base)
    span = worker.start_span("execute:f", CAT_ATTEMPT, 0.0, "t")
    span.finish(1.0)
    events = [{"seq": i, "ts_ms": float(i), "kind": "tick"}
              for i in range(1, 302)]
    sink.apply(3, {"now_ms": 5.0, "spans": spans_to_wire([span]),
                   "metrics": [], "flightrec": events, "final": False})
    assert sink.spans_absorbed == 1
    assert gw.spans[0].span_id == span.span_id
    lane = sink.worker_flightrec[3]
    assert len(lane) == 256  # bounded per worker
    assert lane[-1]["seq"] == 301
