"""Merge-horizon semantics for wall-clock metric merges.

Per-worker gauges and throughput meters stop updating at different
instants; these tests pin the invariant that merging integrates both
operands to ONE shared horizon before dividing — the naive "sum the
per-worker averages" answer is demonstrably wrong on the same inputs.
"""

import pytest

from repro.errors import SimulationError
from repro.simulation.metrics import (
    Counter,
    LatencyRecorder,
    ThroughputMeter,
    TimeSeries,
    TimeWeightedGauge,
)


# -- TimeWeightedGauge ----------------------------------------------------


def test_gauge_merge_integrates_to_shared_horizon():
    a = TimeWeightedGauge("busy", start_time_ms=0.0)
    a.set(100.0, 0.0)
    b = TimeWeightedGauge("busy", start_time_ms=0.0)
    b.set(50.0, 0.0)
    b.set(70.0, 400.0)

    merged = a.merged(b, horizon_ms=800.0)
    # A contributes 100 * 800; B contributes 50*400 + 70*400.
    assert merged.time_average() == pytest.approx(
        (100.0 * 800.0 + 50.0 * 400.0 + 70.0 * 400.0) / 800.0
    )
    assert merged.time_average() == pytest.approx(160.0)
    # The naive answer — each worker averaged over its own window —
    # gives 100 + 50 = 150: B's tail (70 from 400ms on) is lost.
    naive = a.time_average() + b.time_average(400.0)
    assert naive == pytest.approx(150.0)
    assert merged.time_average() != pytest.approx(naive)


def test_gauge_merge_horizon_clamps_up_never_rewinds():
    a = TimeWeightedGauge("g")
    a.set(10.0, 100.0)
    b = TimeWeightedGauge("g")
    b.set(20.0, 400.0)
    # A horizon before b's last update cannot rewind integrated area:
    # the effective horizon is the later of the two last updates.
    merged = a.merged(b, horizon_ms=50.0)
    assert merged._last_time == 400.0
    same = a.merged(b)  # default horizon = later last update
    assert merged.time_average() == pytest.approx(same.time_average())


def test_gauge_merge_sums_value_and_bounds_max():
    a = TimeWeightedGauge("g")
    a.set(3.0, 0.0)
    a.set(1.0, 10.0)
    b = TimeWeightedGauge("g")
    b.set(4.0, 5.0)
    merged = a.merged(b, horizon_ms=20.0)
    assert merged.value == 1.0 + 4.0
    # Upper bound: the component maxima need not have coincided.
    assert merged.max_value == 3.0 + 4.0


def test_gauge_area_until_rejects_time_travel():
    g = TimeWeightedGauge("g")
    g.set(1.0, 100.0)
    assert g.area_until(100.0) == pytest.approx(0.0)
    assert g.area_until(150.0) == pytest.approx(50.0)
    with pytest.raises(SimulationError):
        g.area_until(99.0)


# -- ThroughputMeter ------------------------------------------------------


def test_meter_merge_extends_window_to_horizon():
    a = ThroughputMeter("done")
    for t in (100.0, 200.0, 300.0):
        a.record(t)
    b = ThroughputMeter("done")
    b.record(150.0)

    merged = a.merged(b, horizon_ms=1000.0)
    assert merged.count == 4
    assert merged._first_ms == 100.0
    assert merged._last_ms == 1000.0
    # True fleet rate: 4 completions over the shared 900ms window —
    # NOT the sum of per-meter rates over their own short windows.
    assert merged.rate_per_sec() == pytest.approx(4 * 1000.0 / 900.0)
    naive = a.rate_per_sec() + b.rate_per_sec()
    assert naive > merged.rate_per_sec()


def test_meter_merge_horizon_clamps_down_to_latest_event():
    a = ThroughputMeter("done")
    a.record(100.0)
    a.record(300.0)
    b = ThroughputMeter("done")
    b.record(150.0)
    # Horizon earlier than the last event: window cannot shrink below
    # the span the events themselves occupy.
    merged = a.merged(b, horizon_ms=50.0)
    assert merged._last_ms == 300.0
    assert merged.rate_per_sec() == pytest.approx(3 * 1000.0 / 200.0)


def test_meter_merge_empty_operands():
    a = ThroughputMeter("done")
    b = ThroughputMeter("done")
    merged = a.merged(b, horizon_ms=500.0)
    assert merged.count == 0
    assert merged.rate_per_sec() == 0.0
    # One-sided: the empty meter must not perturb the other.
    b.record(100.0)
    merged = a.merged(b, horizon_ms=600.0)
    assert merged.count == 1
    assert merged._first_ms == 100.0
    assert merged._last_ms == 600.0


# -- parity merges (no horizon semantics) ---------------------------------


def test_latency_counter_series_merges():
    la = LatencyRecorder("l")
    la.extend([1.0, 2.0])
    lb = LatencyRecorder("l")
    lb.record(3.0)
    assert sorted(la.merged(lb).samples) == [1.0, 2.0, 3.0]

    ca = Counter()
    ca.add("x", 2)
    cb = Counter()
    cb.add("x")
    cb.add("y", 5)
    assert ca.merged(cb).as_dict() == {"x": 3, "y": 5}

    sa = TimeSeries("s")
    sa.record(10.0, 1.0)
    sb = TimeSeries("s")
    sb.record(5.0, 2.0)
    assert sa.merged(sb).points == [(5.0, 2.0), (10.0, 1.0)]
