"""Unit tests for the central metrics registry."""

import pytest

from repro.errors import SimulationError
from repro.observe import MetricsRegistry
from repro.simulation import Counter, LatencyRecorder


class TestFactoryAccessors:
    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        rec = reg.latency("request_latency")
        assert reg.latency("request_latency") is rec
        assert reg.get("request_latency") is rec

    def test_labels_distinguish_instances(self):
        reg = MetricsRegistry()
        log = reg.gauge("storage_bytes", store="log")
        db = reg.gauge("storage_bytes", store="db")
        assert log is not db
        assert reg.get("storage_bytes", store="log") is log
        assert len(reg.labelled("storage_bytes")) == 2

    def test_label_order_is_irrelevant(self):
        reg = MetricsRegistry()
        a = reg.counters("ops", node=1, kind="read")
        b = reg.counters("ops", kind="read", node=1)
        assert a is b

    def test_type_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.latency("m")
        with pytest.raises(SimulationError):
            reg.counters("m")

    def test_every_primitive_supported(self):
        reg = MetricsRegistry()
        reg.latency("a")
        reg.counters("b")
        reg.gauge("c")
        reg.throughput("d")
        reg.series("e")
        assert len(reg) == 5


class TestRegisterAndProbe:
    def test_register_adopts_existing_object(self):
        reg = MetricsRegistry()
        rec = LatencyRecorder("mine")
        assert reg.register("request_latency", rec) is rec
        assert reg.get("request_latency") is rec

    def test_reregistering_same_object_is_noop(self):
        reg = MetricsRegistry()
        rec = LatencyRecorder("mine")
        reg.register("m", rec)
        assert reg.register("m", rec) is rec

    def test_different_object_under_same_key_rejected(self):
        reg = MetricsRegistry()
        reg.register("m", LatencyRecorder("one"))
        with pytest.raises(SimulationError):
            reg.register("m", LatencyRecorder("two"))

    def test_probe_evaluated_at_snapshot_time(self):
        reg = MetricsRegistry()
        state = {"trips": 0}
        reg.probe("circuit_breaker", lambda: dict(state), service="log")
        state["trips"] = 3
        snap = reg.snapshot()
        assert snap["circuit_breaker{service=log}"] == {
            "type": "probe", "trips": 3,
        }

    def test_duplicate_probe_rejected(self):
        reg = MetricsRegistry()
        reg.probe("p", dict)
        with pytest.raises(SimulationError):
            reg.probe("p", dict)

    def test_contains_sees_metrics_and_probes(self):
        reg = MetricsRegistry()
        reg.latency("m")
        reg.probe("p", dict)
        assert "m" in reg and "p" in reg and "missing" not in reg

    def test_get_missing_raises_keyerror(self):
        reg = MetricsRegistry()
        with pytest.raises(KeyError):
            reg.get("nope", label="x")


class TestSnapshot:
    def test_snapshot_summarises_each_type(self):
        reg = MetricsRegistry()
        reg.latency("lat").extend([1.0, 2.0, 3.0])
        reg.counters("ctr").add("x", 4)
        reg.gauge("g").set(7.0, now_ms=10.0)
        reg.throughput("thr").record(100.0)
        reg.series("ts").record(1.0, 2.0)
        snap = reg.snapshot(now_ms=20.0)
        assert snap["lat"]["median_ms"] == 2.0
        assert snap["ctr"]["counts"] == {"x": 4}
        assert snap["g"]["value"] == 7.0
        assert snap["thr"]["count"] == 1
        assert snap["ts"]["points"] == 1

    def test_empty_latency_snapshot(self):
        reg = MetricsRegistry()
        reg.latency("lat")
        assert reg.snapshot()["lat"] == {"type": "latency", "count": 0}

    def test_rendered_keys_sorted_and_labelled(self):
        reg = MetricsRegistry()
        reg.counters("b", node=2)
        reg.counters("a")
        keys = list(reg.snapshot())
        assert keys == ["a", "b{node=2}"]


class TestMergedLatency:
    def test_merged_latency_combines_label_sets(self):
        reg = MetricsRegistry()
        reg.latency("op_latency", kind="read").extend([1.0, 3.0])
        reg.latency("op_latency", kind="write").extend([2.0])
        merged = reg.merged_latency("op_latency")
        assert merged.count == 3
        assert merged.median() == 2.0

    def test_merged_latency_skips_non_recorders(self):
        reg = MetricsRegistry()
        reg.latency("m", kind="a").record(5.0)
        reg.register("m", Counter(), kind="b")
        assert reg.merged_latency("m").count == 1
