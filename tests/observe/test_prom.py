"""Prometheus exposition: every snapshot renders lint-clean text."""

from repro.observe import (
    MetricsRegistry,
    lint_prom_text,
    prom_text,
    write_prom_text,
)
from repro.observe.prom import sanitize_label, sanitize_name


def full_registry():
    reg = MetricsRegistry()
    lat = reg.latency("request_ms")
    lat.extend([1.0, 2.0, 30.0])
    reg.latency("rpc_roundtrip_ms", worker=0).record(0.5)
    reg.latency("rpc_roundtrip_ms", worker=1)  # empty: count-only
    counters = reg.counters("ops")
    counters.add("kv.put", 3)
    counters.add("log.append")
    gauge = reg.gauge("busy", start_time_ms=0.0)
    gauge.set(1.0, 10.0)
    gauge.set(0.0, 25.0)
    meter = reg.throughput("completions")
    meter.record(5.0)
    meter.record(905.0)
    series = reg.series("latency_over_time")
    series.record(1.0, 3.5)
    reg.probe("run", lambda: {"completed": 12, "aborted": False,
                              "note": "strings are skipped"})
    return reg


def test_prom_text_lints_clean_end_to_end(tmp_path):
    reg = full_registry()
    text = write_prom_text(
        reg.snapshot(1000.0), str(tmp_path / "metrics.prom")
    )
    assert lint_prom_text(text) == []
    assert (tmp_path / "metrics.prom").read_text() == text


def test_prom_text_maps_every_metric_type():
    text = prom_text(full_registry().snapshot(1000.0))
    assert 'request_ms_ms{quantile="p99"}' in text
    assert "request_ms_count 3" in text
    assert 'ops_total{key="kv.put"} 3' in text
    assert "busy_time_avg" in text and "busy_max 1" in text
    assert "completions_total 2" in text
    assert "completions_rate_per_s" in text
    assert "latency_over_time_points 1" in text
    assert 'run{field="completed"} 12' in text
    assert 'run{field="aborted"} 0' in text
    assert "strings are skipped" not in text
    # Worker-labelled series render next to the unlabelled family.
    assert 'rpc_roundtrip_ms_count{worker="0"} 1' in text
    assert 'rpc_roundtrip_ms_count{worker="1"} 0' in text


def test_sanitizers_coerce_into_charset():
    assert sanitize_name("rpc round-trip (ms)") == "rpc_round_trip__ms_"
    assert sanitize_name("0leading") == "_0leading"
    assert sanitize_label("kv.put") == "kv_put"


def test_lint_catches_grammar_violations():
    bad = "\n".join([
        "# TYPE good gauge",
        "good 1",
        "",                             # blank line in exposition
        "good 2",                       # duplicate sample
        "1bad_name 3",                  # bad metric name charset
        'late{x="1"} 4',                # sample before its TYPE...
        "# TYPE late gauge",            # ...TYPE after samples
        "# TYPE late gauge",            # duplicate TYPE
        "# TYPE weird banana",          # unknown prom type
        "#",                            # bare comment
        "# NOTE freeform",              # unknown comment keyword
        'vals{a="1"} notanumber',       # non-numeric value
        'brok{a=1} 2',                  # unquoted label value
    ])
    errors = lint_prom_text(bad)
    for needle in (
        "duplicate sample", "unparseable sample", "after", "duplicate TYPE",
        "bad type", "bare comment", "unknown comment", "non-numeric",
        "malformed labels", "blank line",
    ):
        assert any(needle in e for e in errors), (needle, errors)


def test_lint_accepts_escapes_and_special_floats():
    ok = "\n".join([
        "# TYPE m gauge",
        'm{path="a\\"b\\\\c"} NaN',
        "m +Inf",
        "m2 -Inf",
    ]) + "\n"
    # Trailing newline split: filter the final empty piece like a
    # scraper would... lint treats interior blanks as errors only.
    assert lint_prom_text(ok.rstrip("\n")) == []
