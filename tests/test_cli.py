"""Unit tests for the command-line interface."""

import pytest

from repro.cli import main


def test_table1_command(capsys):
    assert main(["table1", "--samples", "500"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out
    assert "median" in out


def test_fig10_command(capsys):
    assert main(["fig10", "--requests", "100", "--keys", "100"]) == 0
    out = capsys.readouterr().out
    assert "Figure 10 (a) Read latency" in out
    assert "Figure 10 (b) Write latency" in out
    assert "halfmoon-read" in out


def test_advise_read_heavy(capsys):
    assert main(["advise", "--read-ratio", "0.9"]) == 0
    out = capsys.readouterr().out
    assert "halfmoon-read" in out


def test_advise_write_heavy(capsys):
    assert main(["advise", "--read-ratio", "0.1"]) == 0
    out = capsys.readouterr().out
    assert "halfmoon-write" in out


def test_recovery_command(capsys):
    assert main(["recovery", "--f", "0.0", "--requests", "30"]) == 0
    out = capsys.readouterr().out
    assert "recovery cost" in out
    assert "boki" in out


def test_chaos_command(capsys):
    assert main(["chaos", "--fault-rates", "0.0", "0.1",
                 "--requests", "40", "--seed", "3"]) == 0
    out = capsys.readouterr().out
    assert "Chaos" in out
    assert "violations" in out
    assert "unsafe" in out


def test_seed_and_fault_rate_accepted_everywhere(capsys):
    assert main(["table1", "--samples", "200", "--seed", "7",
                 "--fault-rate", "0.05"]) == 0
    assert "Table 1" in capsys.readouterr().out


def test_seed_makes_output_deterministic(capsys):
    main(["chaos", "--fault-rates", "0.05", "--requests", "30",
          "--seed", "9"])
    first = capsys.readouterr().out
    main(["chaos", "--fault-rates", "0.05", "--requests", "30",
          "--seed", "9"])
    assert capsys.readouterr().out == first


def test_negative_seed_rejected(capsys):
    with pytest.raises(SystemExit):
        main(["table1", "--seed", "-1"])
    assert "--seed must be non-negative" in capsys.readouterr().err


def test_fault_rate_out_of_range_rejected(capsys):
    with pytest.raises(SystemExit):
        main(["fig10", "--fault-rate", "1.5"])
    assert "--fault-rate must be in [0, 1)" in capsys.readouterr().err
    with pytest.raises(SystemExit):
        main(["fig10", "--fault-rate", "-0.2"])
    assert "--fault-rate must be in [0, 1)" in capsys.readouterr().err


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["not-a-command"])


def test_missing_required_argument():
    with pytest.raises(SystemExit):
        main(["advise"])  # --read-ratio is required
