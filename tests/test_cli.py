"""Unit tests for the command-line interface."""

import pytest

from repro.cli import main


def test_table1_command(capsys):
    assert main(["table1", "--samples", "500"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out
    assert "median" in out


def test_fig10_command(capsys):
    assert main(["fig10", "--requests", "100", "--keys", "100"]) == 0
    out = capsys.readouterr().out
    assert "Figure 10 (a) Read latency" in out
    assert "Figure 10 (b) Write latency" in out
    assert "halfmoon-read" in out


def test_advise_read_heavy(capsys):
    assert main(["advise", "--read-ratio", "0.9"]) == 0
    out = capsys.readouterr().out
    assert "halfmoon-read" in out


def test_advise_write_heavy(capsys):
    assert main(["advise", "--read-ratio", "0.1"]) == 0
    out = capsys.readouterr().out
    assert "halfmoon-write" in out


def test_recovery_command(capsys):
    assert main(["recovery", "--f", "0.0", "--requests", "30"]) == 0
    out = capsys.readouterr().out
    assert "recovery cost" in out
    assert "boki" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["not-a-command"])


def test_missing_required_argument():
    with pytest.raises(SystemExit):
        main(["advise"])  # --read-ratio is required
