"""Public API surface sanity checks."""

import importlib

import pytest

import repro

SUBPACKAGES = [
    "repro.analysis",
    "repro.consistency",
    "repro.harness",
    "repro.protocols",
    "repro.runtime",
    "repro.sharedlog",
    "repro.simulation",
    "repro.store",
    "repro.workloads",
]


def test_version():
    assert repro.__version__ == "1.0.0"


@pytest.mark.parametrize("name", SUBPACKAGES)
def test_subpackage_all_resolves(name):
    module = importlib.import_module(name)
    assert hasattr(module, "__all__")
    for symbol in module.__all__:
        assert hasattr(module, symbol), f"{name}.{symbol} missing"


def test_top_level_all_resolves():
    for symbol in repro.__all__:
        assert hasattr(repro, symbol), symbol


@pytest.mark.parametrize("name", SUBPACKAGES + ["repro"])
def test_public_symbols_documented(name):
    """Every public class/function exported from a package has a
    docstring — the 'doc comments on every public item' deliverable."""
    module = importlib.import_module(name)
    for symbol in getattr(module, "__all__", []):
        obj = getattr(module, symbol)
        if symbol == "Invoker":  # a Callable type alias, not an API item
            continue
        if isinstance(obj, type) or callable(obj):
            assert obj.__doc__, f"{name}.{symbol} lacks a docstring"


def test_protocol_registry_is_complete():
    from repro.protocols import PROTOCOL_CLASSES, protocol_names

    assert set(protocol_names()) == {
        "unsafe", "boki", "halfmoon-read", "halfmoon-write",
        "transitional",
    }
    for name, cls in PROTOCOL_CLASSES.items():
        assert cls.name == name


def test_modules_have_docstrings():
    import pathlib

    root = pathlib.Path(repro.__file__).parent
    for path in root.rglob("*.py"):
        text = path.read_text()
        if not text.strip():
            continue
        assert text.lstrip().startswith(('"""', "'''", '#!')), (
            f"{path} lacks a module docstring"
        )
