"""Unit tests for the key-value store and conditional updates."""

import pytest

from repro.errors import KeyMissingError, StoreError
from repro.store import GENESIS_VERSION, KVStore


@pytest.fixture
def kv():
    return KVStore()


def test_get_missing_raises(kv):
    with pytest.raises(KeyMissingError):
        kv.get("nope")


def test_get_optional_default(kv):
    assert kv.get_optional("nope") is None
    assert kv.get_optional("nope", 3) == 3


def test_put_and_get(kv):
    kv.put("k", "v", value_bytes=10)
    assert kv.get("k") == "v"
    assert "k" in kv
    assert len(kv) == 1


def test_put_keeps_existing_version(kv):
    kv.conditional_put("k", "v1", (5, 1))
    kv.put("k", "v2")
    _, version = kv.get_with_version("k")
    assert version == (5, 1)


def test_fresh_put_has_genesis_version(kv):
    kv.put("k", "v")
    _, version = kv.get_with_version("k")
    assert version == GENESIS_VERSION


def test_conditional_put_applies_on_missing_key(kv):
    assert kv.conditional_put("k", "v", (1, 1)) is True
    assert kv.get("k") == "v"


def test_conditional_put_rejects_smaller_or_equal_version(kv):
    kv.conditional_put("k", "v1", (5, 1))
    assert kv.conditional_put("k", "v2", (4, 9)) is False
    assert kv.conditional_put("k", "v3", (5, 1)) is False  # equal
    assert kv.get("k") == "v1"
    assert kv.conditional_rejections == 2


def test_conditional_put_applies_larger_version(kv):
    kv.conditional_put("k", "v1", (5, 1))
    assert kv.conditional_put("k", "v2", (5, 2)) is True  # counter breaks tie
    assert kv.conditional_put("k", "v3", (6, 1)) is True
    assert kv.get("k") == "v3"


def test_conditional_put_beats_genesis(kv):
    kv.put("k", "initial")
    assert kv.conditional_put("k", "v", (1, 1)) is True


def test_genesis_never_beats_real_version(kv):
    kv.conditional_put("k", "v", (1, 1))
    # GENESIS compares below everything; the helper is internal but the
    # semantics are visible through _version_less.
    assert KVStore._version_less(GENESIS_VERSION, (1, 1)) is True
    assert KVStore._version_less((1, 1), GENESIS_VERSION) is False
    assert KVStore._version_less(GENESIS_VERSION, GENESIS_VERSION) is False


def test_incomparable_versions_raise(kv):
    kv.conditional_put("k", "v", (1, 1))
    with pytest.raises(StoreError):
        kv.conditional_put("k", "v2", "a-string-version")


def test_set_version(kv):
    kv.put("k", "v")
    kv.set_version("k", (9, 0))
    _, version = kv.get_with_version("k")
    assert version == (9, 0)
    with pytest.raises(KeyMissingError):
        kv.set_version("missing", (1, 0))


def test_delete(kv):
    kv.put("k", "v", value_bytes=10)
    assert kv.delete("k") is True
    assert kv.delete("k") is False
    assert kv.storage_bytes() == 0


def test_storage_accounting_replaces_not_accumulates(kv):
    kv.put("k", "v1", value_bytes=100)
    kv.put("k", "v2", value_bytes=300)
    assert kv.storage_bytes() == 300


def test_storage_listener(kv):
    observed = []
    kv.add_storage_listener(observed.append)
    kv.put("k", "v", value_bytes=10)
    kv.delete("k")
    assert observed == [10, 0]


def test_read_write_counters(kv):
    kv.put("k", "v")
    kv.get("k")
    kv.get_optional("x")
    kv.conditional_put("k", "v2", (1, 1))
    assert kv.read_count == 2
    assert kv.write_count == 2


def test_keys_iteration(kv):
    kv.put("a", 1)
    kv.put("b", 2)
    assert sorted(kv.keys()) == ["a", "b"]
