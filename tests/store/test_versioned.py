"""Unit tests for the multi-version store layer."""

import pytest

from repro.errors import KeyMissingError, StoreError
from repro.store import (
    KVStore,
    MultiVersionStore,
    split_version_key,
    version_key,
)


@pytest.fixture
def mv():
    return MultiVersionStore(KVStore())


def test_write_and_read_version(mv):
    mv.write_version("k", "v1", "hello")
    assert mv.read_version("k", "v1") == "hello"


def test_versions_are_independent(mv):
    mv.write_version("k", "v1", "one")
    mv.write_version("k", "v2", "two")
    assert mv.read_version("k", "v1") == "one"
    assert mv.read_version("k", "v2") == "two"


def test_missing_version_raises(mv):
    mv.write_version("k", "v1", "one")
    with pytest.raises(KeyMissingError):
        mv.read_version("k", "v2")


def test_reinstalling_same_version_is_idempotent(mv):
    """A crash between DBWrite and logging re-runs the version install."""
    mv.write_version("k", "v1", "value")
    mv.write_version("k", "v1", "value")
    assert mv.read_version("k", "v1") == "value"
    assert mv.version_count("k") == 1


def test_has_and_delete_version(mv):
    mv.write_version("k", "v1", "one")
    assert mv.has_version("k", "v1")
    assert mv.delete_version("k", "v1") is True
    assert mv.delete_version("k", "v1") is False
    assert not mv.has_version("k", "v1")


def test_list_versions_unordered_pointers(mv):
    mv.write_version("k", "zzz", 1)
    mv.write_version("k", "aaa", 2)
    assert sorted(mv.list_versions("k")) == ["aaa", "zzz"]


def test_versions_do_not_collide_with_plain_keys(mv):
    mv.kv.put("k", "latest")
    mv.write_version("k", "v1", "versioned")
    assert mv.kv.get("k") == "latest"
    assert mv.read_version("k", "v1") == "versioned"
    assert mv.list_versions("k") == ["v1"]


def test_key_with_separator_rejected():
    with pytest.raises(StoreError):
        version_key("bad@key", "v1")


def test_split_version_key_roundtrip():
    composite = version_key("obj1", "deadbeef")
    assert split_version_key(composite) == ("obj1", "deadbeef")
    with pytest.raises(StoreError):
        split_version_key("noseparator")


def test_iter_versioned_keys(mv):
    mv.kv.put("plain", 1)
    mv.write_version("a", "v1", 1)
    mv.write_version("b", "v2", 2)
    assert sorted(mv.iter_versioned_keys()) == [("a", "v1"), ("b", "v2")]
