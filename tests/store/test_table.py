"""Unit tests for table snapshots (Section 4.1 remark)."""

import pytest

from repro.runtime.tags import object_tag
from repro.sharedlog import SharedLog
from repro.store import (
    KVStore,
    MultiVersionStore,
    TableIndex,
    TableSnapshotReader,
)


@pytest.fixture
def setup():
    log = SharedLog()
    mv = MultiVersionStore(KVStore())
    index = TableIndex()
    reader = TableSnapshotReader(log, mv, index)
    return log, mv, index, reader


def commit_write(log, mv, key, version, value):
    mv.write_version(key, version, value)
    return log.append(
        [object_tag(key)], {"op": "write", "key": key, "version": version}
    )


def test_snapshot_sees_only_writes_up_to_timestamp(setup):
    log, mv, index, reader = setup
    index.register("accounts", "acct1")
    index.register("accounts", "acct2")
    s1 = commit_write(log, mv, "acct1", "v1", 100)
    s2 = commit_write(log, mv, "acct2", "v1", 200)
    s3 = commit_write(log, mv, "acct1", "v2", 150)

    # Snapshot between s2 and s3: acct1 still at 100.
    rows = reader.scan("accounts", max_seqnum=s2)
    assert rows == {"acct1": 100, "acct2": 200}

    # Snapshot at the tail sees the newer acct1.
    rows = reader.scan("accounts", max_seqnum=s3)
    assert rows == {"acct1": 150, "acct2": 200}


def test_unwritten_keys_omitted(setup):
    log, mv, index, reader = setup
    index.register("t", "present")
    index.register("t", "absent")
    s = commit_write(log, mv, "present", "v1", 1)
    assert reader.scan("t", s) == {"present": 1}


def test_snapshot_versions_returns_pointers(setup):
    log, mv, index, reader = setup
    index.register("t", "k")
    s = commit_write(log, mv, "k", "abc", 5)
    assert reader.snapshot_versions("t", s) == {"k": "abc"}


def test_aggregate(setup):
    log, mv, index, reader = setup
    for i in range(4):
        key = f"row{i}"
        index.register("t", key)
        s = commit_write(log, mv, key, "v1", i * 10)
    assert reader.aggregate("t", s, sum) == 60


def test_index_deduplicates(setup):
    _, _, index, _ = setup
    index.register("t", "k")
    index.register("t", "k")
    assert index.keys_of("t") == ["k"]
    assert index.tables() == ["t"]
    assert index.keys_of("missing") == []
