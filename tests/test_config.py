"""Unit tests for configuration validation and helpers."""

import pytest

from repro import SystemConfig
from repro.config import (
    ClusterConfig,
    FailureConfig,
    GCConfig,
    LatencyConfig,
    StorageSizeConfig,
)
from repro.errors import ConfigError


class TestLatencyConfig:
    def test_defaults_valid(self):
        LatencyConfig().validate()

    def test_p99_below_median_rejected(self):
        with pytest.raises(ConfigError):
            LatencyConfig(db_read_median_ms=2.0,
                          db_read_p99_ms=1.0).validate()

    def test_nonpositive_median_rejected(self):
        with pytest.raises(ConfigError):
            LatencyConfig(log_append_median_ms=0.0).validate()

    def test_factor_bounds(self):
        with pytest.raises(ConfigError):
            LatencyConfig(conditional_write_factor=0.9).validate()
        with pytest.raises(ConfigError):
            LatencyConfig(multiversion_read_factor=0.5).validate()
        with pytest.raises(ConfigError):
            LatencyConfig(overlapped_log_factor=1.5).validate()
        with pytest.raises(ConfigError):
            LatencyConfig(control_log_factor=-0.1).validate()


class TestClusterConfig:
    def test_total_workers(self):
        assert ClusterConfig(function_nodes=8,
                             workers_per_node=8).total_workers == 64

    def test_bounds(self):
        with pytest.raises(ConfigError):
            ClusterConfig(function_nodes=0).validate()
        with pytest.raises(ConfigError):
            ClusterConfig(log_cache_hit_ratio=1.2).validate()


class TestOtherSections:
    def test_gc_interval_positive(self):
        with pytest.raises(ConfigError):
            GCConfig(interval_ms=0).validate()

    def test_storage_sizes_positive(self):
        with pytest.raises(ConfigError):
            StorageSizeConfig(value_bytes=0).validate()

    def test_failure_probability_bounds(self):
        with pytest.raises(ConfigError):
            FailureConfig(crash_probability=1.0).validate()
        with pytest.raises(ConfigError):
            FailureConfig(max_retries=-1).validate()


class TestSystemConfig:
    def test_validate_returns_self(self):
        config = SystemConfig()
        assert config.validate() is config

    def test_with_helpers_produce_new_configs(self):
        base = SystemConfig()
        assert base.with_seed(9).seed == 9
        assert base.with_gc_interval(5.0).gc.interval_ms == 5.0
        assert base.with_value_bytes(1024).storage.value_bytes == 1024
        assert base.with_crash_probability(
            0.1
        ).failures.crash_probability == 0.1
        # The original is untouched (frozen dataclasses).
        assert base.seed != 9 or base.seed == 9  # frozen: no mutation API
        assert base.gc.interval_ms == 10_000.0

    def test_invalid_nested_section_caught(self):
        config = SystemConfig(gc=GCConfig(interval_ms=-1))
        with pytest.raises(ConfigError):
            config.validate()


class TestResilienceAndFaults:
    def test_with_fault_rate_builds_uniform_plan(self):
        config = SystemConfig().with_fault_rate(0.1, scope="log")
        assert config.faults.enabled
        assert config.faults.scope == "log"
        assert config.faults.total_rate == pytest.approx(0.1)
        config.validate()

    def test_with_resilience_overrides_knobs(self):
        config = SystemConfig().with_resilience(
            max_attempts=8, degraded_log_reads=False
        )
        assert config.resilience.max_attempts == 8
        assert not config.resilience.degraded_log_reads
        # Untouched knobs keep their defaults.
        assert config.resilience.drop_background_appends

    def test_invalid_resilience_caught_by_system_validate(self):
        from repro.config import ResilienceConfig

        with pytest.raises(ConfigError):
            SystemConfig(
                resilience=ResilienceConfig(max_attempts=0)
            ).validate()
        with pytest.raises(ConfigError):
            SystemConfig(
                resilience=ResilienceConfig(backoff_multiplier=0.5)
            ).validate()

    def test_invalid_fault_scope_caught(self):
        from repro.config import FaultConfig

        with pytest.raises(ConfigError):
            SystemConfig(
                faults=FaultConfig(enabled=True, error_rate=0.1,
                                   scope="network")
            ).validate()
