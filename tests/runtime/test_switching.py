"""Unit tests for protocol switching (Sections 4.7 and 5.2)."""

import pytest

from repro.errors import SwitchError
from tests.conftest import make_runtime


def rw(ctx, inp):
    value = ctx.read(inp["key"])
    ctx.write(inp["key"], inp["value"])
    return value


def make_switching_runtime(initial="halfmoon-write"):
    runtime = make_runtime(initial, enable_switching=True)
    runtime.populate("obj", "v0")
    runtime.populate("other", "o0")
    runtime.register("rw", rw)
    return runtime


class TestSwitchLifecycle:
    def test_idle_switch_completes_immediately(self):
        runtime = make_switching_runtime()
        runtime.begin_switch("halfmoon-read")
        manager = runtime.switch_manager
        assert not manager.in_progress
        assert manager.current_protocol == "halfmoon-read"
        assert manager.switch_history[-1]["to"] == "halfmoon-read"

    def test_switch_waits_for_running_ssfs(self):
        runtime = make_switching_runtime()
        straggler = runtime.open_session().init()
        runtime.begin_switch("halfmoon-read")
        manager = runtime.switch_manager
        assert manager.in_progress
        assert manager.pending_count == 1
        straggler.finish()
        assert not manager.in_progress
        assert manager.current_protocol == "halfmoon-read"

    def test_double_switch_rejected(self):
        runtime = make_switching_runtime()
        straggler = runtime.open_session().init()
        runtime.begin_switch("halfmoon-read")
        with pytest.raises(SwitchError):
            runtime.begin_switch("halfmoon-write")
        straggler.finish()

    def test_switch_to_current_rejected(self):
        runtime = make_switching_runtime()
        with pytest.raises(SwitchError):
            runtime.begin_switch("halfmoon-write")

    def test_switch_to_non_switchable_rejected(self):
        runtime = make_switching_runtime()
        with pytest.raises(SwitchError):
            runtime.begin_switch("boki")

    def test_runtime_without_switching_rejects_begin(self):
        from repro.errors import InvocationError

        runtime = make_runtime("halfmoon-write")
        with pytest.raises(InvocationError):
            runtime.begin_switch("halfmoon-read")


class TestProtocolResolution:
    def test_pre_switch_ssfs_use_initial_protocol(self):
        runtime = make_switching_runtime("halfmoon-write")
        session = runtime.open_session().init()
        assert session.read("obj") == "v0"  # resolves halfmoon-write
        assert session.env.object_protocols["obj"] == "halfmoon-write"
        session.finish()

    def test_ssf_during_window_uses_transitional(self):
        runtime = make_switching_runtime("halfmoon-write")
        straggler = runtime.open_session().init()
        runtime.begin_switch("halfmoon-read")
        mid = runtime.open_session().init()
        mid.read("obj")
        assert mid.env.object_protocols["obj"] == "transitional"
        straggler.finish()
        mid.finish()

    def test_ssf_after_end_uses_target(self):
        runtime = make_switching_runtime("halfmoon-write")
        runtime.begin_switch("halfmoon-read")
        session = runtime.open_session().init()
        session.read("obj")
        assert session.env.object_protocols["obj"] == "halfmoon-read"
        session.finish()

    def test_protocol_choice_sticky_per_invocation(self):
        runtime = make_switching_runtime("halfmoon-write")
        straggler = runtime.open_session().init()
        mid = runtime.open_session().init()
        mid.read("obj")  # pins transitional? no switch yet -> initial
        assert mid.env.object_protocols["obj"] == "halfmoon-write"
        runtime.begin_switch("halfmoon-read")
        # Subsequent ops of the same invocation keep the pinned protocol.
        mid.write("obj", "v1")
        assert mid.env.object_protocols["obj"] == "halfmoon-write"
        straggler.finish()
        mid.finish()


class TestSealing:
    def test_write_to_read_seal_exposes_latest(self):
        """Values written by pure Halfmoon-write must be visible to
        Halfmoon-read SSFs after the switch."""
        runtime = make_switching_runtime("halfmoon-write")
        runtime.invoke("rw", {"key": "obj", "value": "hmw-value"})
        runtime.begin_switch("halfmoon-read")
        probe = runtime.invoke("rw", {"key": "obj", "value": "next"})
        assert probe.output == "hmw-value"

    def test_read_to_write_seal_exposes_latest(self):
        runtime = make_switching_runtime("halfmoon-read")
        runtime.invoke("rw", {"key": "obj", "value": "hmr-value"})
        runtime.begin_switch("halfmoon-write")
        probe = runtime.invoke("rw", {"key": "obj", "value": "next"})
        assert probe.output == "hmr-value"

    def test_round_trip_switch_preserves_values(self):
        runtime = make_switching_runtime("halfmoon-write")
        runtime.invoke("rw", {"key": "obj", "value": "a"})
        runtime.begin_switch("halfmoon-read")
        runtime.invoke("rw", {"key": "obj", "value": "b"})
        runtime.begin_switch("halfmoon-write")
        probe = runtime.invoke("rw", {"key": "obj", "value": "c"})
        assert probe.output == "b"

    def test_untouched_object_survives_switch(self):
        runtime = make_switching_runtime("halfmoon-write")
        runtime.begin_switch("halfmoon-read")
        probe = runtime.invoke("rw", {"key": "other", "value": "x"})
        assert probe.output == "o0"


class TestTransitionalCoexistence:
    def test_transitional_write_visible_to_both_worlds(self):
        runtime = make_switching_runtime("halfmoon-write")
        old = runtime.open_session().init()       # will use halfmoon-write
        runtime.begin_switch("halfmoon-read")
        mid = runtime.open_session().init()       # transitional
        mid.write("obj", "from-transitional")
        # The old-protocol SSF (halfmoon-write) reads the LATEST slot.
        assert old.read("obj") == "from-transitional"
        mid.finish()
        old.finish()
        # After END, halfmoon-read SSFs see it through the write log.
        new = runtime.open_session().init()
        assert new.read("obj") == "from-transitional"
        new.finish()

    def test_transitional_read_prefers_fresher_world(self):
        runtime = make_switching_runtime("halfmoon-write")
        old = runtime.open_session().init()
        runtime.begin_switch("halfmoon-read")
        # Old-protocol write lands only in the LATEST slot.
        old.write("obj", "fresh-latest")
        mid = runtime.open_session().init()
        assert mid.read("obj") == "fresh-latest"
        old.finish()
        mid.finish()


class TestFaultTolerantSwitching:
    def test_replayed_ssf_resolves_same_protocol(self):
        """Re-execution spanning a switch must keep the original protocol
        (the transition log is queried with the persistent initial
        cursorTS)."""
        runtime = make_switching_runtime("halfmoon-write")
        crashed = runtime.open_session().init()
        crashed.read("obj")
        assert crashed.env.object_protocols["obj"] == "halfmoon-write"
        # The instance "crashes"; meanwhile a switch begins (it cannot
        # finish: the instance is still tracked as running).
        runtime.begin_switch("halfmoon-read")
        replay = crashed.replay().init()
        replay.read("obj")
        assert replay.env.object_protocols["obj"] == "halfmoon-write"
        replay.finish()
