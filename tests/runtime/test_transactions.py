"""Tests for the transaction layer (OCC over the logging protocols)."""

import pytest

from repro import CrashOnceAtEvery, LocalRuntime, SystemConfig
from repro.errors import ProtocolError
from repro.runtime import TransactionAborted
from tests.conftest import make_runtime


def build(protocol, crash_policy=None):
    runtime = make_runtime(protocol, crash_policy=crash_policy)
    runtime.populate("src", 100)
    runtime.populate("dst", 0)
    runtime.populate("audit", 0)

    def transfer(ctx, amount):
        def body(txn):
            source = txn.read("src")
            if source < amount:
                return False
            txn.write("src", source - amount)
            txn.write("dst", txn.read("dst") + amount)
            txn.write("audit", txn.read("audit") + 1)
            return True

        return ctx.transaction(body)

    runtime.register("transfer", transfer)
    runtime.register(
        "probe",
        lambda ctx, inp: (ctx.read("src"), ctx.read("dst"),
                          ctx.read("audit")),
    )
    return runtime


class TestBasics:
    def test_commit_applies_all_writes(self, protocol_name):
        runtime = build(protocol_name)
        assert runtime.invoke("transfer", 30).output is True
        assert runtime.invoke("probe").output == (70, 30, 1)

    def test_read_your_writes(self, protocol_name):
        runtime = build(protocol_name)

        def double_bump(ctx, inp):
            def body(txn):
                txn.write("dst", txn.read("dst") + 1)
                txn.write("dst", txn.read("dst") + 1)  # sees the buffer
                return txn.read("dst")

            return ctx.transaction(body)

        runtime.register("double", double_bump)
        assert runtime.invoke("double").output == 2
        assert runtime.invoke("probe").output[1] == 2

    def test_abort_path_applies_nothing(self, protocol_name):
        runtime = build(protocol_name)
        # Insufficient funds: body returns False without writes? No — it
        # returns False but writes nothing, so the txn commits an empty
        # write set.  Verify state is untouched.
        assert runtime.invoke("transfer", 500).output is False
        assert runtime.invoke("probe").output == (100, 0, 0)

    def test_unsafe_protocol_rejected(self):
        runtime = make_runtime("unsafe")
        runtime.populate("k", 1)
        runtime.register(
            "t", lambda ctx, inp: ctx.transaction(lambda txn: txn.read("k"))
        )
        with pytest.raises(ProtocolError):
            runtime.invoke("t")


class TestConflicts:
    def test_concurrent_conflicting_txn_aborts_and_retries(
        self, protocol_name
    ):
        runtime = build(protocol_name)
        interfered = {"done": False}

        def sneaky_transfer(ctx, amount):
            def body(txn):
                source = txn.read("src")
                # Another SSF writes src mid-transaction, once.
                if not interfered["done"]:
                    interfered["done"] = True
                    other = runtime.open_session().init()
                    other.write("src", source - 1)
                    other.finish()
                txn.write("src", source - amount)
                return source

            return ctx.transaction(body)

        runtime.register("sneaky", sneaky_transfer)
        result = runtime.invoke("sneaky", 10)
        # The first attempt aborted; the retry read the interfering
        # value (99) and committed 89.
        assert result.output == 99
        assert runtime.invoke("probe").output[0] == 89

    def test_exhausted_retries_raise(self, protocol_name):
        runtime = build(protocol_name)

        def always_conflicting(ctx, inp):
            def body(txn):
                source = txn.read("src")
                other = runtime.open_session().init()
                other.write("src", source)  # any write bumps the version
                other.finish()
                txn.write("src", source - 1)
                return source

            return ctx.transaction(body, max_attempts=3)

        runtime.register("conflict", always_conflicting)
        with pytest.raises(TransactionAborted):
            runtime.invoke("conflict")


class TestCrashRecovery:
    def test_exactly_once_across_all_crash_points(self, protocol_name):
        reference = None
        for crash_at in range(0, 45):
            policy = CrashOnceAtEvery(crash_at) if crash_at else None
            runtime = build(protocol_name, crash_policy=policy)
            result = runtime.invoke("transfer", 25)
            state = runtime.invoke("probe").output
            assert result.output is True
            if reference is None:
                reference = state
            else:
                assert state == reference, (
                    f"{protocol_name} diverged at crash point {crash_at}"
                )
        assert reference == (75, 25, 1)

    def test_replay_repeats_logged_decision(self, protocol_name):
        """A completed transaction replays from its decision record: no
        second validation, no duplicate writes."""
        runtime = build(protocol_name)
        result = runtime.invoke("transfer", 10)
        state = runtime.invoke("probe").output
        replay = runtime.invoke(
            "transfer", 10, instance_id=result.instance_id
        )
        assert replay.output is True
        assert runtime.invoke("probe").output == state

    def test_money_conserved_under_random_crashes(self, protocol_name):
        from repro import BernoulliCrashes

        runtime = build(protocol_name)
        runtime.crash_policy = BernoulliCrashes(
            0.3, runtime.backend.rng.stream("crashes"), horizon=40
        )
        transfers = 0
        for _ in range(10):
            if runtime.invoke("transfer", 5).output:
                transfers += 1
        src, dst, audit = runtime.invoke("probe").output
        assert src + dst == 100
        assert dst == transfers * 5
        assert audit == transfers
