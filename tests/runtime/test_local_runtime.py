"""Unit tests for the direct-mode runtime."""

import pytest

from repro import (
    LocalRuntime,
    ReadOp,
    RetriesExhaustedError,
    ScriptedCrashes,
    SystemConfig,
    WriteOp,
)
from repro.config import FailureConfig
from tests.conftest import make_runtime


def counter_fn(ctx, inp):
    value = ctx.read("counter")
    ctx.write("counter", value + inp)
    return value + inp


def counter_gen(inp):
    value = yield ReadOp("counter")
    yield WriteOp("counter", value + inp)
    return value + inp


class TestInvocation:
    def test_ctx_style(self, runtime):
        runtime.populate("counter", 0)
        runtime.register("bump", counter_fn)
        result = runtime.invoke("bump", 5)
        assert result.output == 5
        assert result.attempts == 1
        assert result.latency_ms > 0

    def test_generator_style(self, runtime):
        runtime.populate("counter", 0)
        runtime.register("bump", counter_gen)
        assert runtime.invoke("bump", 3).output == 3
        assert runtime.invoke("bump", 4).output == 7

    def test_populate_visible_to_all_protocols(self, runtime):
        runtime.populate("k", "initial")
        runtime.register("probe", lambda ctx, inp: ctx.read("k"))
        assert runtime.invoke("probe").output == "initial"

    def test_instance_ids_unique(self, runtime):
        ids = {runtime.new_instance_id() for _ in range(100)}
        assert len(ids) == 100

    def test_explicit_instance_id(self, runtime):
        runtime.populate("counter", 0)
        runtime.register("bump", counter_fn)
        result = runtime.invoke("bump", 1, instance_id="fixed-id")
        assert result.instance_id == "fixed-id"

    def test_tracker_updated(self, runtime):
        runtime.populate("counter", 0)
        runtime.register("bump", counter_fn)
        runtime.invoke("bump", 1)
        assert runtime.tracker.running_count == 0
        assert runtime.tracker.finished_count == 1


class TestCrashRetry:
    def test_crash_is_retried(self, protocol_name):
        runtime = make_runtime(
            protocol_name, crash_policy=ScriptedCrashes({1: 2})
        )
        runtime.populate("counter", 0)
        runtime.register("bump", counter_fn)
        result = runtime.invoke("bump", 5)
        assert result.output == 5
        assert result.attempts == 2

    def test_retries_exhausted(self, protocol_name):
        config = SystemConfig(failures=FailureConfig(max_retries=2))
        runtime = LocalRuntime(
            config, protocol=protocol_name,
            crash_policy=ScriptedCrashes({1: 1, 2: 1, 3: 1}),
        )
        runtime.populate("counter", 0)
        runtime.register("bump", counter_fn)
        with pytest.raises(RetriesExhaustedError):
            runtime.invoke("bump", 5)

    def test_crash_latency_includes_detection_delay(self, protocol_name):
        # Degenerate latency distributions make the comparison exact: the
        # crashed run pays the pre-crash work plus the detection delay on
        # top of a clean run's cost.
        from tests.conftest import deterministic_config

        config = deterministic_config()
        runtime = LocalRuntime(
            config, protocol=protocol_name,
            crash_policy=ScriptedCrashes({1: 2}),
        )
        runtime.populate("counter", 0)
        runtime.register("bump", counter_fn)
        crashed = runtime.invoke("bump", 5)

        clean_runtime = LocalRuntime(config, protocol=protocol_name)
        clean_runtime.populate("counter", 0)
        clean_runtime.register("bump", counter_fn)
        clean = clean_runtime.invoke("bump", 5)
        assert crashed.latency_ms > clean.latency_ms


class TestStorageAccounting:
    def test_storage_bytes_reports_log_and_db(self, runtime):
        runtime.populate("counter", 0)
        runtime.register("bump", counter_fn)
        runtime.invoke("bump", 1)
        usage = runtime.storage_bytes()
        assert usage["log"] > 0
        assert usage["db"] > 0
        assert usage["total"] == usage["log"] + usage["db"]


class TestSessions:
    def test_session_basic_ops(self, runtime):
        runtime.populate("k", 1)
        session = runtime.open_session().init()
        assert session.read("k") == 1
        session.write("k", 2)
        assert session.read("k") == 2
        session.finish()
        assert runtime.tracker.finished_count == 1

    def test_session_finish_idempotent(self, runtime):
        session = runtime.open_session().init()
        session.finish()
        session.finish()
        assert runtime.tracker.finished_count == 1

    def test_replay_session_shares_identity(self, runtime):
        runtime.populate("k", 1)
        s1 = runtime.open_session().init()
        s1.write("k", 99)
        s2 = s1.replay().init()
        assert s2.env.instance_id == s1.env.instance_id
        assert s2.env.attempt == s1.env.attempt + 1
        # The replay sees the same init record (same initial cursor).
        assert s2.env.init_cursor_ts == s1.env.init_cursor_ts
