"""Unit tests for the service bindings (latency charging, checkpoints)."""

import pytest

from repro import SystemConfig
from repro.errors import ConditionalAppendError, CrashError
from repro.runtime import Cost, InstanceServices, ServiceBackend


@pytest.fixture
def backend():
    return ServiceBackend(SystemConfig(seed=5))


@pytest.fixture
def svc(backend):
    return InstanceServices(backend)


def test_log_append_charges_and_counts(svc, backend):
    svc.log_append(["t"], {"op": "x"})
    assert backend.counters.get(Cost.LOG_APPEND) == 1
    assert svc.trace.total_ms() > 0


def test_overlapped_append_charges_partial_latency(backend):
    sync_svc = InstanceServices(backend)
    sync_svc.log_append(["t"], {"op": "x"}, synchronous=True)
    async_svc = InstanceServices(backend)
    async_svc.log_append(["t"], {"op": "x"}, synchronous=False)
    assert backend.counters.get(Cost.LOG_APPEND_OVERLAPPED) == 1
    # Overlapped appends cost a fraction of a synchronous one on average.
    assert backend.latency.mean(Cost.LOG_APPEND_OVERLAPPED) < (
        backend.latency.mean(Cost.LOG_APPEND)
    )


def test_control_append_kind(svc, backend):
    svc.log_append(["t"], {"op": "init"}, control=True)
    assert backend.counters.get(Cost.LOG_APPEND_CONTROL) == 1


def test_trace_drain_resets(svc):
    svc.db_read("missing")
    total = svc.trace.total_ms()
    assert total > 0
    assert svc.trace.drain() == total
    assert svc.trace.total_ms() == 0.0


def test_db_ops_route_to_substrates(svc, backend):
    svc.db_write("k", "v")
    assert svc.db_read("k") == "v"
    svc.db_write_version("k", "v1", "old")
    assert svc.db_read_version("k", "v1") == "old"
    assert svc.db_cond_write("k", "new", (1, 1)) is True
    value, version = svc.db_read_with_version("k")
    assert value == "new"
    assert version == (1, 1)


def test_cond_append_conflict_still_charged(svc, backend):
    svc.log_cond_append(["i"], {"s": 0}, "i", 0)
    before = len(svc.trace.entries)
    with pytest.raises(ConditionalAppendError):
        svc.log_cond_append(["i"], {"s": 0}, "i", 0)
    assert len(svc.trace.entries) == before + 1  # losing round trip paid


def test_checkpoints_fire_in_order(backend):
    labels = []
    svc = InstanceServices(backend, fault_hook=labels.append)
    svc.db_write("k", "v")
    assert labels == ["db_write:pre", "db_write:post"]


def test_crash_hook_aborts_before_effect(backend):
    def hook(label):
        if label == "db_write:pre":
            raise CrashError()

    svc = InstanceServices(backend, fault_hook=hook)
    with pytest.raises(CrashError):
        svc.db_write("k", "v")
    assert "k" not in backend.kv


def test_crash_hook_after_effect(backend):
    def hook(label):
        if label == "db_write:post":
            raise CrashError()

    svc = InstanceServices(backend, fault_hook=hook)
    with pytest.raises(CrashError):
        svc.db_write("k", "v")
    assert backend.kv.get("k") == "v"  # effect applied before the crash


def test_log_reads_charge_cache_path(svc, backend):
    seq = svc.log_append(["t"], {"op": "x"})
    svc.log_read_prev("t", seq)
    assert backend.counters.get(Cost.LOG_READ) == 1


def test_log_read_stream_returns_records(svc):
    svc.log_append(["t"], {"op": "a"})
    svc.log_append(["t"], {"op": "b"})
    records = svc.log_read_stream("t")
    assert [r["op"] for r in records] == ["a", "b"]


def test_random_hex_shape_and_determinism():
    b1 = ServiceBackend(SystemConfig(seed=5))
    b2 = ServiceBackend(SystemConfig(seed=5))
    h1 = [b1.random_hex() for _ in range(3)]
    h2 = [b2.random_hex() for _ in range(3)]
    assert h1 == h2
    assert all(len(h) == 16 for h in h1)
    assert len(set(h1)) == 3


def test_log_tail_property(svc, backend):
    tail_before = svc.log_tail
    svc.log_append(["t"], {})
    assert svc.log_tail == tail_before + 1


def test_latency_samples_reproducible():
    a = ServiceBackend(SystemConfig(seed=9))
    b = ServiceBackend(SystemConfig(seed=9))
    sa = InstanceServices(a)
    sb = InstanceServices(b)
    sa.db_read("x")
    sb.db_read("x")
    assert sa.trace.entries == sb.trace.entries
