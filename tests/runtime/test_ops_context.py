"""Tests for op descriptors and Context.apply dispatch."""

import pytest

from repro import (
    ComputeOp,
    InvokeOp,
    LocalRuntime,
    ReadOp,
    SyncOp,
    SystemConfig,
    TxnOp,
    WriteOp,
)
from repro.errors import InvocationError
from tests.conftest import make_runtime


@pytest.fixture
def runtime(protocol_name):
    rt = make_runtime(protocol_name)
    rt.populate("k", 10)
    return rt


def test_read_and_write_ops(runtime):
    def fn(inp):
        value = yield ReadOp("k")
        yield WriteOp("k", value * 2)
        return value

    runtime.register("fn", fn)
    assert runtime.invoke("fn").output == 10
    probe = runtime.open_session().init()
    assert probe.read("k") == 20
    probe.finish()


def test_invoke_op(runtime):
    def child(inp):
        value = yield ReadOp("k")
        return value + inp

    def parent(inp):
        result = yield InvokeOp("child", 5)
        return result

    runtime.register("child", child)
    runtime.register("parent", parent)
    assert runtime.invoke("parent").output == 15


def test_compute_op_charges_time(runtime):
    def fn(inp):
        yield ComputeOp(duration_ms=5.0)
        return "done"

    runtime.register("fn", fn)
    result = runtime.invoke("fn")
    # 5 ms of compute at 0.25 ms per tick = 20 charges plus init costs.
    assert result.latency_ms >= 5.0


def test_sync_op(runtime):
    def fn(inp):
        yield SyncOp()
        value = yield ReadOp("k")
        return value

    runtime.register("fn", fn)
    assert runtime.invoke("fn").output == 10


def test_txn_op(protocol_name):
    runtime = make_runtime(protocol_name)
    runtime.populate("a", 1)
    runtime.populate("b", 2)

    def swap(txn):
        a, b = txn.read("a"), txn.read("b")
        txn.write("a", b)
        txn.write("b", a)
        return (a, b)

    def fn(inp):
        result = yield TxnOp(swap)
        return result

    runtime.register("fn", fn)
    assert runtime.invoke("fn").output == (1, 2)
    probe = runtime.open_session().init()
    assert (probe.read("a"), probe.read("b")) == (2, 1)
    probe.finish()


def test_unknown_op_rejected(runtime):
    def fn(inp):
        yield object()

    runtime.register("fn", fn)
    with pytest.raises(InvocationError):
        runtime.invoke("fn")


def test_txn_op_in_des():
    """TxnOp works under the simulated platform too."""
    from repro.harness import SimPlatform
    from repro.workloads.base import Request, Workload

    class TxnWorkload(Workload):
        name = "txn-workload"

        def register(self, runtime):
            def body(txn):
                txn.write("counter", txn.read("counter") + 1)

            def fn(inp):
                yield TxnOp(body)

            runtime.register("txn", fn)

        def populate(self, runtime):
            runtime.populate("counter", 0)

        def next_request(self, rng):
            return Request("txn", None)

        def read_write_profile(self):
            return (1.0, 1.0)

    platform = SimPlatform(
        TxnWorkload(), "halfmoon-write", SystemConfig(seed=19)
    )
    result = platform.run(rate_per_s=50.0, duration_ms=2_000.0)
    assert result.completed > 0
    assert platform.runtime.backend.kv.get("counter") == result.completed
