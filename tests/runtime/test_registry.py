"""Unit tests for the function registry and invocation tracker."""

import pytest

from repro.errors import InvocationError, RuntimeStateError
from repro.runtime import FunctionRegistry, InvocationTracker


class TestFunctionRegistry:
    def test_register_and_get(self):
        reg = FunctionRegistry()
        fn = lambda ctx, inp: None
        reg.register("f", fn)
        assert reg.get("f") is fn
        assert reg.names() == ["f"]

    def test_duplicate_registration_rejected(self):
        reg = FunctionRegistry()
        reg.register("f", lambda ctx, inp: None)
        with pytest.raises(RuntimeStateError):
            reg.register("f", lambda ctx, inp: None)

    def test_unknown_function(self):
        with pytest.raises(InvocationError):
            FunctionRegistry().get("missing")

    def test_generator_style_detection(self):
        def plain(ctx, inp):
            return 1

        def gen(inp):
            yield 1

        assert FunctionRegistry.is_generator_style(plain) is False
        assert FunctionRegistry.is_generator_style(gen) is True


class TestInvocationTracker:
    def test_start_finish_lifecycle(self):
        t = InvocationTracker()
        t.start("a", 10)
        assert t.is_running("a")
        assert t.running_count == 1
        t.finish("a")
        assert not t.is_running("a")
        assert t.finished_count == 1

    def test_restart_of_running_instance_is_noop(self):
        t = InvocationTracker()
        t.start("a", 10)
        t.start("a", 99)  # re-execution must not move the init ts
        assert t.safe_seqnum(log_frontier=1000) == 10

    def test_finish_unknown_instance_is_noop(self):
        t = InvocationTracker()
        t.finish("ghost")
        assert t.finished_count == 0

    def test_set_init_ts_updates(self):
        t = InvocationTracker()
        t.start("a", 5)
        t.set_init_ts("a", 7)
        assert t.safe_seqnum(log_frontier=100) == 7

    def test_safe_seqnum_min_of_running(self):
        t = InvocationTracker()
        t.start("a", 10)
        t.start("b", 4)
        t.start("c", 20)
        assert t.safe_seqnum(log_frontier=100) == 4
        t.finish("b")
        assert t.safe_seqnum(log_frontier=100) == 10

    def test_safe_seqnum_frontier_when_idle(self):
        t = InvocationTracker()
        assert t.safe_seqnum(log_frontier=42) == 42

    def test_running_started_before(self):
        t = InvocationTracker()
        t.start("a", 5)
        t.start("b", 15)
        assert t.running_started_before(10) == {"a"}
        assert t.running_started_before(20) == {"a", "b"}

    def test_finish_listeners(self):
        t = InvocationTracker()
        seen = []
        t.add_finish_listener(seen.append)
        t.start("a", 1)
        t.finish("a")
        assert seen == ["a"]

    def test_drain_finished_clears(self):
        t = InvocationTracker()
        t.start("a", 1)
        t.finish("a")
        assert t.drain_finished() == {"a"}
        assert t.drain_finished() == set()
