"""Unit tests for the function registry and invocation tracker."""

import pytest

from repro.errors import InvocationError, RuntimeStateError
from repro.runtime import FunctionRegistry, InvocationTracker


class TestFunctionRegistry:
    def test_register_and_get(self):
        reg = FunctionRegistry()
        fn = lambda ctx, inp: None
        reg.register("f", fn)
        assert reg.get("f") is fn
        assert reg.names() == ["f"]

    def test_duplicate_registration_rejected(self):
        reg = FunctionRegistry()
        reg.register("f", lambda ctx, inp: None)
        with pytest.raises(RuntimeStateError):
            reg.register("f", lambda ctx, inp: None)

    def test_unknown_function(self):
        with pytest.raises(InvocationError):
            FunctionRegistry().get("missing")

    def test_generator_style_detection(self):
        def plain(ctx, inp):
            return 1

        def gen(inp):
            yield 1

        assert FunctionRegistry.is_generator_style(plain) is False
        assert FunctionRegistry.is_generator_style(gen) is True


class TestInvocationTracker:
    def test_start_finish_lifecycle(self):
        t = InvocationTracker()
        t.start("a", 10)
        assert t.is_running("a")
        assert t.running_count == 1
        t.finish("a")
        assert not t.is_running("a")
        assert t.finished_count == 1

    def test_restart_of_running_instance_is_noop(self):
        t = InvocationTracker()
        t.start("a", 10)
        t.start("a", 99)  # re-execution must not move the init ts
        assert t.safe_seqnum(log_frontier=1000) == 10

    def test_finish_unknown_instance_is_noop(self):
        t = InvocationTracker()
        t.finish("ghost")
        assert t.finished_count == 0

    def test_set_init_ts_updates(self):
        t = InvocationTracker()
        t.start("a", 5)
        t.set_init_ts("a", 7)
        assert t.safe_seqnum(log_frontier=100) == 7

    def test_safe_seqnum_min_of_running(self):
        t = InvocationTracker()
        t.start("a", 10)
        t.start("b", 4)
        t.start("c", 20)
        assert t.safe_seqnum(log_frontier=100) == 4
        t.finish("b")
        assert t.safe_seqnum(log_frontier=100) == 10

    def test_safe_seqnum_frontier_when_idle(self):
        t = InvocationTracker()
        assert t.safe_seqnum(log_frontier=42) == 42

    def test_running_started_before(self):
        t = InvocationTracker()
        t.start("a", 5)
        t.start("b", 15)
        assert t.running_started_before(10) == {"a"}
        assert t.running_started_before(20) == {"a", "b"}

    def test_finish_listeners(self):
        t = InvocationTracker()
        seen = []
        t.add_finish_listener(seen.append)
        t.start("a", 1)
        t.finish("a")
        assert seen == ["a"]

    def test_drain_finished_clears(self):
        t = InvocationTracker()
        t.start("a", 1)
        t.finish("a")
        assert t.drain_finished() == {"a"}
        assert t.drain_finished() == set()


class TestOrphanLifecycle:
    def test_mark_orphaned_moves_out_of_running(self):
        t = InvocationTracker()
        t.start("a", 10)
        t.mark_orphaned("a")
        assert not t.is_running("a")
        assert t.is_orphaned("a")
        assert t.orphan_count == 1
        assert t.running_count == 0

    def test_orphan_pins_safe_seqnum(self):
        t = InvocationTracker()
        t.start("a", 10)
        t.start("b", 50)
        t.mark_orphaned("a")
        # The orphan's init ts pins the frontier like a running one.
        assert t.safe_seqnum(log_frontier=1000) == 10
        t.finish("a")
        assert t.safe_seqnum(log_frontier=1000) == 50

    def test_reclaim_returns_orphan_to_running(self):
        t = InvocationTracker()
        t.start("a", 10)
        t.mark_orphaned("a")
        t.reclaim("a")
        assert t.is_running("a")
        assert t.orphan_count == 0
        assert t.safe_seqnum(log_frontier=1000) == 10

    def test_restart_of_orphaned_instance_is_noop(self):
        t = InvocationTracker()
        t.start("a", 10)
        t.mark_orphaned("a")
        t.start("a", 999)  # takeover re-dispatch must not move the ts
        assert t.is_orphaned("a")
        assert t.safe_seqnum(log_frontier=1000) == 10

    def test_set_init_ts_reaches_orphaned_store(self):
        t = InvocationTracker()
        t.start("a", 10)
        t.mark_orphaned("a")
        t.set_init_ts("a", 7)
        assert t.orphans() == {"a": 7}

    def test_finish_of_orphan_counts_and_unpins(self):
        t = InvocationTracker()
        t.start("a", 10)
        t.mark_orphaned("a")
        t.finish("a")
        assert t.finished_count == 1
        assert t.orphan_count == 0
        assert t.safe_seqnum(log_frontier=88) == 88

    def test_mark_orphaned_of_unknown_instance_is_noop(self):
        t = InvocationTracker()
        t.mark_orphaned("ghost")
        t.reclaim("ghost")
        assert t.orphan_count == 0
        assert t.running_count == 0

    def test_running_started_before_includes_orphans(self):
        t = InvocationTracker()
        t.start("a", 10)
        t.start("b", 90)
        t.mark_orphaned("a")
        assert t.running_started_before(50) == {"a"}
        assert t.running_started_before(100) == {"a", "b"}
