"""Unit tests for garbage collection (Section 4.5)."""

import pytest

from repro.runtime import instance_tag, object_tag
from tests.conftest import make_runtime


def rw(ctx, inp):
    value = ctx.read(inp["key"])
    ctx.write(inp["key"], inp["value"])
    return value


@pytest.fixture
def hm_read_runtime():
    runtime = make_runtime("halfmoon-read")
    runtime.populate("obj", "v0")
    runtime.register("rw", rw)
    return runtime


def test_step_logs_trimmed_after_finish(hm_read_runtime):
    runtime = hm_read_runtime
    result = runtime.invoke("rw", {"key": "obj", "value": "v1"})
    tag = instance_tag(result.instance_id)
    assert len(runtime.backend.log.read_stream(tag)) > 0
    stats = runtime.run_gc()
    assert runtime.backend.log.read_stream(tag) == []
    assert stats.step_log_records_trimmed > 0


def test_old_versions_collected_once_unobservable(hm_read_runtime):
    runtime = hm_read_runtime
    for i in range(5):
        runtime.invoke("rw", {"key": "obj", "value": f"v{i + 1}"})
    mv = runtime.backend.mv
    assert mv.version_count("obj") == 6  # genesis + 5 writes
    stats = runtime.run_gc()
    # Only the newest version can still be observed (no SSF is running).
    assert mv.version_count("obj") == 1
    assert stats.versions_deleted == 5
    # The surviving version is the latest value.
    probe = runtime.invoke("rw", {"key": "obj", "value": "v6"})
    assert probe.output == "v5"


def test_latest_version_always_survives(hm_read_runtime):
    runtime = hm_read_runtime
    runtime.invoke("rw", {"key": "obj", "value": "v1"})
    runtime.run_gc()
    tag = object_tag("obj")
    records = runtime.backend.log.read_stream(tag)
    assert len(records) == 1
    assert records[0]["version"] in (
        runtime.backend.mv.list_versions("obj")
    )


def test_running_ssf_blocks_collection(hm_read_runtime):
    runtime = hm_read_runtime
    # A session that started early is still running.
    early = runtime.open_session().init()
    for i in range(4):
        runtime.invoke("rw", {"key": "obj", "value": f"v{i + 1}"})
    runtime.run_gc()
    # The early session's cursor must still resolve: versions visible at
    # its initial cursorTS survive.
    assert early.read("obj") == "v0"
    early.finish()
    runtime.run_gc()
    assert runtime.backend.mv.version_count("obj") == 1


def test_gc_is_idempotent(hm_read_runtime):
    runtime = hm_read_runtime
    for i in range(3):
        runtime.invoke("rw", {"key": "obj", "value": f"v{i}"})
    first = runtime.run_gc()
    deleted_after_first = first.versions_deleted
    second = runtime.run_gc()
    assert second.versions_deleted == deleted_after_first


def test_gc_under_halfmoon_write_trims_read_logs():
    runtime = make_runtime("halfmoon-write")
    runtime.populate("obj", "v0")
    runtime.register("rw", rw)
    for i in range(4):
        runtime.invoke("rw", {"key": "obj", "value": f"v{i}"})
    log = runtime.backend.log
    live_before = log.live_record_count
    stats = runtime.run_gc()
    assert log.live_record_count < live_before
    assert stats.step_log_records_trimmed > 0
    # Halfmoon-write is single-version: nothing to collect in the store.
    assert stats.versions_deleted == 0
    assert runtime.backend.kv.get("obj") == "v3"


def test_gc_respects_boki_step_logs():
    runtime = make_runtime("boki")
    runtime.populate("obj", "v0")
    runtime.register("rw", rw)
    runtime.invoke("rw", {"key": "obj", "value": "v1"})
    runtime.run_gc()
    # After GC the whole step log is gone but the object remains.
    assert runtime.backend.kv.get("obj") == "v1"


def test_gc_stats_accumulate(hm_read_runtime):
    runtime = hm_read_runtime
    runtime.invoke("rw", {"key": "obj", "value": "v1"})
    runtime.run_gc()
    runtime.invoke("rw", {"key": "obj", "value": "v2"})
    stats = runtime.run_gc()
    assert stats.scans == 2
    assert stats.last_safe_seqnum > 0


def test_orphaned_ssf_blocks_collection(hm_read_runtime):
    """Regression (node recovery × GC): an invocation orphaned by a node
    crash must pin the GC frontier exactly like a running one — the
    takeover replay still reads the versions its init cursorTS could
    observe."""
    runtime = hm_read_runtime
    early = runtime.open_session().init()
    for i in range(4):
        runtime.invoke("rw", {"key": "obj", "value": f"v{i + 1}"})
    # The hosting node dies: the session is orphaned, not finished.
    runtime.tracker.mark_orphaned(early.env.instance_id)
    runtime.run_gc()
    # The orphan's observable version must have survived collection.
    assert early.read("obj") == "v0"

    # A survivor reclaims and finishes it; only then may GC trim.
    runtime.tracker.reclaim(early.env.instance_id)
    early.finish()
    runtime.run_gc()
    assert runtime.backend.mv.version_count("obj") == 1


def test_finished_orphan_releases_gc_frontier(hm_read_runtime):
    """Contrast case: once the orphan is finished the frontier advances
    and its old versions are collected."""
    runtime = hm_read_runtime
    early = runtime.open_session().init()
    for i in range(3):
        runtime.invoke("rw", {"key": "obj", "value": f"v{i + 1}"})
    runtime.tracker.mark_orphaned(early.env.instance_id)
    runtime.run_gc()
    assert runtime.backend.mv.version_count("obj") > 1
    runtime.tracker.finish(early.env.instance_id)
    runtime.run_gc()
    assert runtime.backend.mv.version_count("obj") == 1


def test_gc_checkpoints_durable_kv_partitions():
    """Each GC cycle checkpoints every live partition and truncates its
    redo journal — and skips down partitions, whose journal is exactly
    what the rebuild needs."""
    from repro import SystemConfig
    from repro.runtime import LocalRuntime

    cfg = (
        SystemConfig(seed=1234)
        .with_storage_plane(backend="sharded", log_shards=2,
                            kv_partitions=2)
        .with_storage_chaos()
        .validate()
    )
    runtime = LocalRuntime(cfg, protocol="halfmoon-read")
    runtime.register("rw", rw)
    runtime.populate("obj", "v0")
    runtime.invoke("rw", {"key": "obj", "value": "v1"})
    kv = runtime.backend.kv
    assert kv.durability
    assert any(kv.journal_length(i) > 0 for i in range(2))

    stats = runtime.run_gc()
    assert stats.kv_checkpoints == 2
    assert stats.kv_journal_truncated > 0
    assert all(kv.journal_length(i) == 0 for i in range(2))

    # A down partition keeps its journal across cycles.
    runtime.invoke("rw", {"key": "obj", "value": "v2"})
    busy = kv.partition_of("obj")
    before = kv.snapshot_partition(busy)
    kv.crash_partition(busy)
    length = kv.journal_length(busy)
    assert length > 0
    stats = runtime.run_gc()
    assert stats.kv_checkpoints == 3  # cumulative: only the live one ran
    assert kv.journal_length(busy) == length
    kv.rebuild_partition(busy)
    from repro.storageplane import diff_partition_snapshots
    assert diff_partition_snapshots(
        before, kv.snapshot_partition(busy)
    ) == []


def test_gc_skips_down_shards_and_retries_later():
    """A down log shard must not crash the collector: its streams are
    skipped this cycle and trimmed after the rebuild."""
    from repro import SystemConfig
    from repro.runtime import LocalRuntime

    cfg = (
        SystemConfig(seed=1234)
        .with_storage_plane(backend="sharded", log_shards=2,
                            kv_partitions=2)
        .with_storage_chaos()
        .validate()
    )
    runtime = LocalRuntime(cfg, protocol="halfmoon-read")
    runtime.register("rw", rw)
    runtime.populate("obj", "v0")
    for i in range(3):
        runtime.invoke("rw", {"key": "obj", "value": f"v{i + 1}"})
    log = runtime.backend.log
    log.crash_shard_replica(0)
    stats_degraded = runtime.run_gc()  # must not raise
    log.rebuild_shard(0)
    runtime.run_gc()
    total = (stats_degraded.step_log_records_trimmed
             + runtime.gc.stats.step_log_records_trimmed)
    assert total >= 0  # both cycles completed
    from repro.storageplane.audit import audit_sharded_log
    assert audit_sharded_log(log) == []
