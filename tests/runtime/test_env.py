"""Unit tests for the per-invocation environment."""

from repro.runtime import Env
from repro.sharedlog import LogRecord


def make_record(seqnum, step, **data):
    payload = {"step": step, **data}
    return LogRecord(seqnum, ("i:x",), payload)


def test_record_step_and_replay_lookup():
    env = Env(instance_id="x")
    env.record_step(make_record(10, 1, op="read"))
    env.step = 1
    assert env.replay_record().seqnum == 10
    env.step = 2
    assert env.replay_record() is None


def test_advance_cursor_is_monotone():
    env = Env(instance_id="x")
    env.advance_cursor(5)
    env.advance_cursor(3)  # must not regress
    assert env.cursor_ts == 5
    env.advance_cursor(9)
    assert env.cursor_ts == 9


def test_reset_for_replay_preserves_identity():
    env = Env(instance_id="x", input={"a": 1})
    env.step = 4
    env.cursor_ts = 77
    env.consecutive_writes = 2
    env.object_protocols["k"] = "halfmoon-read"
    env.last_write_key = "k"
    env.reset_for_replay()
    assert env.instance_id == "x"
    assert env.input == {"a": 1}
    assert env.step == 0
    assert env.cursor_ts == 0
    assert env.consecutive_writes == 0
    assert env.object_protocols == {}
    assert env.last_write_key == ""
    assert env.attempt == 2
