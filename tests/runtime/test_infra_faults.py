"""Composition of the two fault dimensions: infrastructure faults
(transient log/store errors, timeouts, gray failure) injected while the
crash machinery is also firing.

The core property: exactly-once must survive the *combination* — a crash
landing in the middle of a retry storm still yields each effect exactly
once for every logged protocol.  ``unsafe`` is exempt by design.
"""

from dataclasses import replace

import pytest

from repro import CrashOnceAtEvery, LocalRuntime, SystemConfig
from repro.errors import (
    ServiceTimeoutError,
    ServiceUnavailableError,
    TransientServiceError,
)
from repro.runtime.services import Cost
from tests.conftest import PROTOCOLS

FAULT_RATE = 0.25  # aggressive: most invocations see at least one fault


def faulty_config(seed=1234, rate=FAULT_RATE, **resilience):
    config = SystemConfig(seed=seed).with_fault_rate(rate)
    if resilience:
        config = config.with_resilience(**resilience)
    return config


def build_counter_runtime(protocol, config, crash_policy=None):
    runtime = LocalRuntime(config, protocol=protocol,
                           crash_policy=crash_policy)
    runtime.populate("n", 0)

    def bump(ctx, inp):
        value = ctx.read("n")
        ctx.write("n", value + 1)
        return value + 1

    runtime.register("bump", bump)
    runtime.register("probe", lambda ctx, inp: ctx.read("n"))
    return runtime


class TestErrorTaxonomy:
    def test_transient_errors_are_retryable(self):
        assert TransientServiceError("x").retryable
        assert ServiceTimeoutError("x").retryable
        assert ServiceUnavailableError("x").retryable

    def test_service_metadata_carried(self):
        err = ServiceUnavailableError("log gave up", service="log",
                                      op="log_append")
        assert err.service == "log"
        assert err.op == "log_append"


class TestRetriesInsideServices:
    def test_faulted_ops_are_retried_transparently(self, protocol_name):
        """At a hefty fault rate every invocation still succeeds; the
        substrate layer absorbs the faults via retries."""
        runtime = build_counter_runtime(protocol_name, faulty_config())
        for expected in range(1, 31):
            assert runtime.invoke("bump").output == expected
        assert runtime.invoke("probe").output == 30
        counters = runtime.backend.counters.as_dict()
        assert counters.get("service_retries", 0) > 0

    def test_backoff_charged_to_cost_trace(self, protocol_name):
        runtime = build_counter_runtime(protocol_name, faulty_config())
        for _ in range(30):
            runtime.invoke("bump")
        backend = runtime.backend
        assert Cost.RETRY_BACKOFF in backend.op_latency
        assert backend.op_latency[Cost.RETRY_BACKOFF].count > 0
        # Error/timeout attempts are charged too.
        charged = (backend.op_latency.get(Cost.SERVICE_ERROR),
                   backend.op_latency.get(Cost.SERVICE_TIMEOUT))
        assert any(rec is not None and rec.count > 0 for rec in charged)

    def test_faults_slow_requests_down(self, protocol_name):
        """p99 under faults strictly exceeds the failure-free p99 (the
        resilience layer charges retries, backoff, and timeouts)."""

        def p99(config):
            runtime = build_counter_runtime(protocol_name, config)
            samples = [runtime.invoke("bump").latency_ms
                       for _ in range(60)]
            samples.sort()
            return samples[int(0.99 * (len(samples) - 1))]

        assert p99(faulty_config()) > p99(
            SystemConfig(seed=1234)
        )

    def test_instance_level_retry_on_exhausted_budget(self):
        """With a one-shot retry budget, a faulted op escalates to the
        instance level; LocalRuntime re-runs the attempt and the final
        state is still exactly-once."""
        config = faulty_config(max_attempts=1)
        runtime = build_counter_runtime("halfmoon-read", config)
        for expected in range(1, 41):
            assert runtime.invoke("bump").output == expected
        counters = runtime.backend.counters.as_dict()
        assert counters.get("attempts_lost_to_service_faults", 0) > 0
        assert runtime.invoke("probe").output == 40

    def test_deadline_escalates_as_timeout(self):
        """An op deadline shorter than one attempt timeout turns every
        injected timeout into an instance-level ServiceTimeoutError —
        which the runtime also absorbs by re-running the attempt."""
        config = faulty_config(op_deadline_ms=5.0, attempt_timeout_ms=10.0)
        runtime = build_counter_runtime("boki", config)
        for expected in range(1, 31):
            assert runtime.invoke("bump").output == expected
        assert runtime.backend.counters.as_dict().get(
            "attempts_lost_to_service_faults", 0
        ) > 0


class TestCrashComposition:
    """Exhaustive crash-at-every-checkpoint sweeps with faults active."""

    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_exactly_once_under_crash_and_faults(self, protocol):
        for crash_at in range(1, 25):
            runtime = build_counter_runtime(
                protocol, faulty_config(seed=100 + crash_at),
                crash_policy=CrashOnceAtEvery(crash_at),
            )
            assert runtime.invoke("bump").output == 1
            assert runtime.invoke("probe").output == 1

    def test_unsafe_is_not_exactly_once(self):
        """The control: unsafe double-applies when crashed after its
        write — with or without infra faults."""
        violations = 0
        for crash_at in range(1, 8):
            runtime = build_counter_runtime(
                "unsafe", faulty_config(seed=100 + crash_at),
                crash_policy=CrashOnceAtEvery(crash_at),
            )
            runtime.invoke("bump")
            if runtime.invoke("probe").output != 1:
                violations += 1
        assert violations > 0

    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_transactions_survive_crash_and_faults(self, protocol):
        for crash_at in range(1, 31):
            runtime = LocalRuntime(
                faulty_config(seed=200 + crash_at), protocol=protocol,
                crash_policy=CrashOnceAtEvery(crash_at),
            )
            runtime.populate("src", 100)
            runtime.populate("dst", 0)

            def transfer(ctx, amount):
                def body(txn):
                    txn.write("src", txn.read("src") - amount)
                    txn.write("dst", txn.read("dst") + amount)
                    return True

                return ctx.transaction(body)

            runtime.register("transfer", transfer)
            runtime.register(
                "probe",
                lambda ctx, inp: (ctx.read("src"), ctx.read("dst")),
            )
            assert runtime.invoke("transfer", 30).output is True
            assert runtime.invoke("probe").output == (70, 30)

    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_triggers_fire_exactly_once_under_crash_and_faults(
        self, protocol
    ):
        for crash_at in range(1, 31):
            runtime = LocalRuntime(
                faulty_config(seed=300 + crash_at), protocol=protocol,
                crash_policy=CrashOnceAtEvery(crash_at),
            )
            runtime.populate("derived", 0)

            def ingest(ctx, inp):
                ctx.trigger("postprocess", inp)
                return inp

            def postprocess(ctx, inp):
                ctx.write("derived", ctx.read("derived") + inp)
                return inp

            runtime.register("ingest", ingest)
            runtime.register("postprocess", postprocess)
            runtime.register("probe",
                             lambda ctx, inp: ctx.read("derived"))
            runtime.invoke("ingest", 5)
            assert runtime.invoke("probe").output == 5


class TestDegradedModes:
    def test_brownout_serves_cached_log_reads(self):
        """A log-scoped brown-out trips the breaker; cache-resident
        reads are then served node-locally, and results stay correct."""
        config = (
            SystemConfig(seed=77)
            .with_fault_rate(0.45, scope="log")
            .with_resilience(breaker_failure_threshold=3,
                             breaker_cooldown_ops=20)
        )
        runtime = build_counter_runtime("halfmoon-read", config)
        runtime.invoke("bump")
        for _ in range(80):
            assert runtime.invoke("probe").output == 1
        counters = runtime.backend.counters.as_dict()
        assert counters.get("degraded_log_reads", 0) > 0
        assert runtime.backend.breaker_trips() > 0

    def test_fallback_disabled_means_no_degraded_reads(self):
        config = (
            SystemConfig(seed=77)
            .with_fault_rate(0.45, scope="log")
            .with_resilience(breaker_failure_threshold=3,
                             breaker_cooldown_ops=20,
                             degraded_log_reads=False)
        )
        runtime = build_counter_runtime("halfmoon-read", config)
        runtime.invoke("bump")
        for _ in range(80):
            assert runtime.invoke("probe").output == 1
        assert runtime.backend.counters.as_dict().get(
            "degraded_log_reads", 0
        ) == 0

    def test_background_appends_dropped_not_retried(self):
        """Opportunistic checkpoint appends are best-effort: under
        faults they are dropped (never retried) and correctness holds."""
        base = SystemConfig(seed=55).with_fault_rate(0.3)
        config = replace(
            base,
            protocol=replace(base.protocol,
                             checkpoint_log_free_reads=True),
        )
        runtime = build_counter_runtime("halfmoon-read", config)
        for expected in range(1, 41):
            assert runtime.invoke("bump").output == expected
        counters = runtime.backend.counters.as_dict()
        assert counters.get("background_appends_dropped", 0) > 0
        assert runtime.invoke("probe").output == 40


class TestDeterminism:
    def test_same_seed_same_fault_outcome(self, protocol_name):
        def run():
            runtime = build_counter_runtime(protocol_name,
                                            faulty_config(seed=31))
            latencies = tuple(runtime.invoke("bump").latency_ms
                              for _ in range(20))
            return latencies, runtime.backend.counters.as_dict()

        assert run() == run()
