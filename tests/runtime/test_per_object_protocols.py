"""Per-object protocol assignment (Section 4.6).

The two protocols differ only in read/write handling and share the SSF's
cursorTS, so each object can independently run the protocol matching its
own read/write intensity.
"""

import pytest

from repro.errors import SwitchError
from repro.runtime import Cost, instance_tag, object_tag
from tests.conftest import make_runtime


@pytest.fixture
def runtime():
    rt = make_runtime("halfmoon-read")
    rt.populate("read_hot", "r0")    # default: halfmoon-read
    rt.populate("write_hot", "w0")
    rt.set_object_protocol("write_hot", "halfmoon-write")
    return rt


def test_assignment_validated():
    rt = make_runtime("halfmoon-read")
    with pytest.raises(SwitchError):
        rt.set_object_protocol("k", "boki")
    with pytest.raises(SwitchError):
        rt.set_object_protocol("k", "nonsense")


def test_each_object_uses_its_protocol(runtime):
    session = runtime.open_session().init()
    appends_before = runtime.backend.log.append_count

    # write_hot runs Halfmoon-write: this write is log-free.
    session.write("write_hot", "w1")
    assert runtime.backend.log.append_count == appends_before
    assert runtime.backend.kv.get("write_hot") == "w1"

    # read_hot runs Halfmoon-read: this read is log-free.
    assert session.read("read_hot") == "r0"
    assert runtime.backend.log.append_count == appends_before
    session.finish()


def test_mixed_ops_share_cursor(runtime):
    """A read on the HM-write object is logged and advances the cursor,
    which then parameterises the HM-read object's reads."""
    writer = runtime.open_session().init()
    writer.write("read_hot", "r1")
    writer.finish()

    session = runtime.open_session().init()
    # Stale cursor: older than the write above? No - init acquires a
    # fresh cursor, so the write is visible.
    assert session.read("read_hot") == "r1"
    # Reading the HM-write object logs and advances the cursor further.
    cursor_before = session.env.cursor_ts
    session.read("write_hot")
    assert session.env.cursor_ts > cursor_before
    session.finish()


def test_exactly_once_with_mixed_assignment(runtime):
    from repro import CrashOnceAtEvery, LocalRuntime, SystemConfig

    def mixed(ctx, inp):
        a = ctx.read("read_hot")
        ctx.write("write_hot", inp)
        b = ctx.read("write_hot")
        ctx.write("read_hot", f"{a}+{inp}")
        return (a, b)

    reference = None
    for crash_at in range(0, 20):
        rt = make_runtime("halfmoon-read")
        rt.populate("read_hot", "r0")
        rt.populate("write_hot", "w0")
        rt.set_object_protocol("write_hot", "halfmoon-write")
        if crash_at:
            rt.crash_policy = CrashOnceAtEvery(crash_at)
        rt.register("mixed", mixed)
        result = rt.invoke("mixed", "X")
        probe = rt.open_session().init()
        state = (probe.read("read_hot"), probe.read("write_hot"))
        probe.finish()
        if reference is None:
            reference = (result.output, state)
        else:
            assert (result.output, state) == reference, crash_at


def test_assignment_beats_uniform_on_split_workload():
    """With one read-hot and one write-hot object, the per-object split
    logs strictly less than either uniform deployment."""

    def traffic(rt):
        rt.populate("read_hot", 0)
        rt.populate("write_hot", 0)

        def fn(ctx, inp):
            for _ in range(4):
                ctx.read("read_hot")
                ctx.write("write_hot", inp)

        rt.register("fn", fn)
        for i in range(10):
            rt.invoke("fn", i)
        counters = rt.backend.counters.as_dict()
        return sum(counters.get(k, 0) for k in Cost.LOGGING_KINDS)

    uniform_read = traffic(make_runtime("halfmoon-read"))
    uniform_write = traffic(make_runtime("halfmoon-write"))

    split_runtime = make_runtime("halfmoon-read")
    split_runtime.set_object_protocol("read_hot", "halfmoon-read")
    split_runtime.set_object_protocol("write_hot", "halfmoon-write")
    split = traffic(split_runtime)

    assert split < uniform_read
    assert split < uniform_write


def test_override_wins_over_switching(runtime):
    """Static assignments are not affected by a global switch."""
    rt = make_runtime("halfmoon-write", enable_switching=True)
    rt.populate("pinned", "p0")
    rt.populate("floating", "f0")
    rt.set_object_protocol("pinned", "halfmoon-read")
    rt.begin_switch("halfmoon-read")

    session = rt.open_session().init()
    appends = rt.backend.log.append_count
    assert session.read("pinned") == "p0"       # log-free (HM-read)
    assert rt.backend.log.append_count == appends
    session.finish()
