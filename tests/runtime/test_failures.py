"""Unit tests for crash-injection policies."""

import numpy as np
import pytest

from repro.errors import CrashError
from repro.runtime import (
    BernoulliCrashes,
    CrashOnceAtEvery,
    NoCrashes,
    ScriptedCrashes,
)


def fire(hook, n):
    """Drive a fault hook through n checkpoints; return the crash index."""
    for i in range(1, n + 1):
        try:
            hook(f"op{i}")
        except CrashError:
            return i
    return None


def test_no_crashes_returns_no_hook():
    assert NoCrashes().hook_for("x", 1) is None


def test_scripted_crash_at_exact_checkpoint():
    policy = ScriptedCrashes({1: 3})
    hook = policy.hook_for("x", 1)
    assert fire(hook, 10) == 3
    assert policy.crashes_fired == 1


def test_scripted_unlisted_attempt_clean():
    policy = ScriptedCrashes({1: 3})
    assert policy.hook_for("x", 2) is None


def test_scripted_multiple_attempts():
    policy = ScriptedCrashes({1: 2, 2: 5})
    assert fire(policy.hook_for("x", 1), 10) == 2
    assert fire(policy.hook_for("x", 2), 10) == 5
    assert policy.hook_for("x", 3) is None


def test_scripted_instance_filter():
    policy = ScriptedCrashes({1: 1}, instance_id="target")
    assert policy.hook_for("other", 1) is None
    assert fire(policy.hook_for("target", 1), 3) == 1


def test_crash_once_at_every():
    policy = CrashOnceAtEvery(4)
    assert fire(policy.hook_for("x", 1), 10) == 4
    assert policy.hook_for("x", 2) is None
    assert policy.crashes_fired == 1


def test_crash_once_beyond_range_never_fires():
    policy = CrashOnceAtEvery(100)
    assert fire(policy.hook_for("x", 1), 10) is None
    assert policy.crashes_fired == 0


class TestBernoulli:
    def test_f_zero_never_crashes(self):
        policy = BernoulliCrashes(0.0, np.random.default_rng(1))
        assert policy.hook_for("x", 1) is None

    def test_invalid_f_rejected(self):
        with pytest.raises(ValueError):
            BernoulliCrashes(1.0, np.random.default_rng(1))

    def test_crash_frequency_tracks_f(self):
        rng = np.random.default_rng(2)
        policy = BernoulliCrashes(0.3, rng, horizon=5)
        crashed = 0
        for i in range(2000):
            hook = policy.hook_for(f"inst{i}", 1)
            if hook is not None and fire(hook, 5) is not None:
                crashed += 1
        assert crashed / 2000 == pytest.approx(0.3, abs=0.03)

    def test_per_instance_crash_cap(self):
        rng = np.random.default_rng(3)
        policy = BernoulliCrashes(
            0.99, rng, horizon=1, max_crashes_per_instance=2
        )
        crashes = 0
        for attempt in range(1, 50):
            hook = policy.hook_for("inst", attempt)
            if hook is None:
                continue
            if fire(hook, 1) is not None:
                crashes += 1
        assert crashes == 2

    def test_draw_beyond_checkpoint_count_survives(self):
        rng = np.random.default_rng(4)
        policy = BernoulliCrashes(0.999, rng, horizon=50)
        hook = policy.hook_for("inst", 1)
        # Only 2 checkpoints actually execute; a target > 2 never fires.
        result = fire(hook, 2) if hook else None
        assert result in (None, 1, 2)
