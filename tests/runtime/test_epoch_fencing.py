"""Services-level epoch fencing: a fenced append triggers leader
rediscovery (not blind backoff), applies exactly once, and stale node
caches are evicted on shard failover."""

import pytest

from repro import SystemConfig
from repro.errors import (
    FencedEpochError,
    ServiceUnavailableError,
    StorageUnavailableError,
)
from repro.runtime import Cost, InstanceServices, ServiceBackend


def _chaos_backend(seed=5, **chaos):
    cfg = (
        SystemConfig(seed=seed)
        .with_storage_plane(backend="sharded", log_shards=2,
                            kv_partitions=2)
        .with_storage_chaos(**chaos)
    )
    return ServiceBackend(cfg.validate())


@pytest.fixture
def backend():
    # Chaos armed with zero fault rates: the epoch view and fencing
    # machinery are live, but no faults inject — runs stay deterministic.
    return _chaos_backend()


@pytest.fixture
def svc(backend):
    return InstanceServices(backend)


def test_chaos_arms_epoch_view_and_disables_fast_path(backend):
    svc = InstanceServices(backend)
    assert backend.epoch_view is not None
    assert backend.storage_faults is not None
    assert not svc._fast


def test_fenced_append_rediscovers_and_applies_once(svc, backend):
    svc.log_append(["t:a"], {"op": "pre"})
    backend.log.crash_sequencer()
    backend.log.failover_sequencer()
    assert backend.epoch_view.stale  # the worker still holds epoch 1

    seqnum = svc.log_append(["t:a"], {"op": "post"})

    # The fence fired once, the append applied exactly once — retry
    # went through rediscovery, not the backoff schedule.
    assert backend.log.metalog.fenced_appends == 1
    assert backend.counters.get("epoch_rediscoveries") == 1
    assert backend.counters.get(Cost.LEADER_REDISCOVERY) == 1
    assert not backend.counters.get("service_retries")
    assert not backend.epoch_view.stale
    stream = backend.log.read_stream("t:a")
    assert [r.seqnum for r in stream][-1] == seqnum
    assert [r.data["op"] for r in stream] == ["pre", "post"]


def test_fence_during_cond_append_keeps_offsets(svc, backend):
    svc.log_cond_append(["s:x"], {"step": 0}, "s:x", 0)
    backend.log.crash_sequencer()
    backend.log.failover_sequencer()
    svc.log_cond_append(["s:x"], {"step": 1}, "s:x", 1)
    assert backend.log.stream_length("s:x") == 2
    assert backend.counters.get("epoch_rediscoveries") == 1


def test_leader_down_rides_the_retry_loop(svc, backend):
    backend.log.crash_sequencer()  # down, nobody fails over
    with pytest.raises(ServiceUnavailableError):
        svc.log_append(["t:a"], {"op": "x"})
    # Every attempt was rejected before effect and billed like a
    # timeout against the op's retry budget.
    policy = backend.retry_policy
    assert (backend.counters.get("storage_unavailable_ops")
            == policy.max_attempts)
    assert backend.log.stream_length("t:a") == 0
    # Recovery: failover, rediscovery on the next op, back in business.
    backend.log.failover_sequencer()
    svc.log_append(["t:a"], {"op": "x"})
    assert backend.log.stream_length("t:a") == 1


def test_flapping_leader_is_bounded(svc, backend):
    """Rediscovery retries are bounded by max_rediscoveries, not the
    ordinary retry budget — a flapping leader cannot loop forever."""
    real_append = backend.log.append
    fences = {"n": 0}

    def always_fenced(*args, **kwargs):
        fences["n"] += 1
        raise FencedEpochError(
            "stale", stale_epoch=1, current_epoch=2
        )

    backend.log.append = always_fenced
    try:
        with pytest.raises(ServiceUnavailableError) as exc_info:
            svc.log_append(["t:a"], {"op": "x"})
    finally:
        backend.log.append = real_append
    assert "flapping" in str(exc_info.value)
    policy = backend.retry_policy
    assert fences["n"] == policy.max_rediscoveries + 1
    assert (backend.counters.get("epoch_rediscoveries")
            == policy.max_rediscoveries + 1)


def test_refresh_without_chaos_raises():
    backend = ServiceBackend(SystemConfig(seed=5))
    assert backend.epoch_view is None
    with pytest.raises(StorageUnavailableError):
        backend.refresh_log_epoch()


# ----------------------------------------------------------------------
# Satellite: stale record caches cannot survive a shard failover
# ----------------------------------------------------------------------

def _seqnums_on_shard(backend, shard, count=4):
    """Append until ``count`` records live on ``shard``; return them."""
    seqnums = []
    svc = InstanceServices(backend)
    i = 0
    while len(seqnums) < count:
        tag = f"c:{i}"
        if backend.log.shard_of(tag) == shard:
            seqnums.append(svc.log_append([tag], {"i": i}))
        i += 1
    return seqnums


def test_drop_shard_cache_evicts_only_that_shard(backend):
    on_zero = _seqnums_on_shard(backend, 0)
    on_one = _seqnums_on_shard(backend, 1)
    for seqnum in on_zero:
        assert backend.cache.contains(seqnum)

    evicted = backend.drop_shard_cache(0)

    assert evicted == len(on_zero)
    assert backend.counters.get("shard_cache_records_lost") == evicted
    # A post-failover read of shard-0 records cannot be served from the
    # stale node cache: every lookup misses and pays the storage trip.
    for seqnum in on_zero:
        assert not backend.cache.contains(seqnum)
        assert not backend.cache.lookup(seqnum, 0)
    # Shard 1's cache entries are untouched.
    for seqnum in on_one:
        assert backend.cache.contains(seqnum)


def test_stale_cache_cannot_serve_pre_epoch_read_after_failover(backend):
    """Regression: after an R=1 shard loss + rebuild, the rebuilt shard
    serves a *new* epoch of record placements; reads must go to storage,
    not to cache entries inserted before the crash."""
    svc = InstanceServices(backend)
    seqnums = _seqnums_on_shard(backend, 0, count=3)
    hits_before = backend.cache.hits

    backend.log.crash_shard_replica(0)
    backend.drop_shard_cache(0)  # what the chaos controller does
    backend.log.rebuild_shard(0)

    # The records are all readable (rebuilt from the durable tier)...
    record = svc.log_read_prev("c:0", 10_000)
    assert record is not None and record.seqnum in seqnums
    # ...but none were served out of the pre-crash cache.
    assert backend.cache.hits == hits_before
    assert backend.counters.get("shard_cache_records_lost") == len(seqnums)
