"""Tests for trigger edges (Section 4.4's recommended design pattern)."""

import pytest

from repro import CrashOnceAtEvery, LocalRuntime, ScriptedCrashes
from repro.errors import ProtocolError
from tests.conftest import make_runtime


def build(protocol, crash_policy=None):
    runtime = make_runtime(protocol, crash_policy=crash_policy)
    runtime.populate("events", [])
    runtime.populate("derived", 0)

    def ingest(ctx, inp):
        events = ctx.read("events")
        ctx.write("events", events + [inp])
        ctx.trigger("postprocess", inp)
        return len(events) + 1

    def postprocess(ctx, inp):
        # Sees the ingest's write: triggers start after the parent ends.
        events = ctx.read("events")
        assert inp in events, "trigger ran before its cause was visible"
        ctx.write("derived", ctx.read("derived") + inp)
        return inp

    runtime.register("ingest", ingest)
    runtime.register("postprocess", postprocess)
    runtime.register(
        "probe",
        lambda ctx, inp: (ctx.read("events"), ctx.read("derived")),
    )
    return runtime


def test_trigger_fires_after_completion(protocol_name):
    runtime = build(protocol_name)
    result = runtime.invoke("ingest", 5)
    assert result.output == 1
    events, derived = runtime.invoke("probe").output
    assert events == [5]
    assert derived == 5


def test_trigger_sees_parent_effects(protocol_name):
    """The real-time boundary property: an SSF started after another
    finishes observes all of its effects — the assert inside
    ``postprocess`` enforces it on every run."""
    runtime = build(protocol_name)
    for value in (1, 2, 3):
        runtime.invoke("ingest", value)
    events, derived = runtime.invoke("probe").output
    assert events == [1, 2, 3]
    assert derived == 6


def test_trigger_exactly_once_under_crashes(protocol_name):
    for crash_at in range(1, 30):
        runtime = build(
            protocol_name, crash_policy=CrashOnceAtEvery(crash_at)
        )
        runtime.invoke("ingest", 7)
        events, derived = runtime.invoke("probe").output
        assert events == [7], crash_at
        assert derived == 7, crash_at


def test_trigger_callee_id_stable_across_replay(protocol_name):
    """A replayed parent re-registers the same callee id, so a zombie
    parent retriggering produces a replayed (no-op) child."""
    runtime = build(protocol_name)
    result = runtime.invoke("ingest", 9)
    state = runtime.invoke("probe").output
    # Zombie replay of the completed parent fires the trigger again —
    # with the pinned callee id, so the child replays idempotently.
    runtime.invoke("ingest", 9, instance_id=result.instance_id)
    assert runtime.invoke("probe").output == state


def test_trigger_requires_logged_protocol():
    runtime = make_runtime("unsafe")
    runtime.populate("events", [])
    runtime.register(
        "bad", lambda ctx, inp: ctx.trigger("whatever")
    )
    with pytest.raises(ProtocolError):
        runtime.invoke("bad")


def test_chained_triggers(protocol_name):
    runtime = make_runtime(protocol_name)
    runtime.populate("chain", [])

    def stage(ctx, inp):
        chain = ctx.read("chain")
        ctx.write("chain", chain + [inp])
        if inp < 3:
            ctx.trigger("stage", inp + 1)
        return inp

    runtime.register("stage", stage)
    runtime.invoke("stage", 1)
    probe = runtime.open_session().init()
    assert probe.read("chain") == [1, 2, 3]
    probe.finish()
