"""Smoke tests for the storage-chaos experiment harness."""

import pytest

from repro.harness.storagechaos import (
    DEFAULT_COMPONENTS,
    run_storagechaos_point,
    run_storagechaos_sweep,
)

#: One small, fully deterministic cell shared by several assertions.
POINT_KW = dict(
    crash_at_ms=400.0,
    recover_after_ms=300.0,
    rate_per_s=250.0,
    duration_ms=1_200.0,
    drain_ms=8_000.0,
    seed=7,
    crash_f=0.1,
)


@pytest.fixture(scope="module")
def boki_metalog_point():
    return run_storagechaos_point("boki", "metalog", **POINT_KW)


def test_metalog_kill_fences_and_stays_exactly_once(boki_metalog_point):
    point = boki_metalog_point
    assert point.violations == 0
    assert point.anomalies == []
    assert point.rebuild_diffs == []
    assert point.expected_bumps > 0
    assert point.result.completed > 0
    # The kill actually happened and workers actually tripped over it:
    # either an append was fenced post-failover or an op was rejected
    # while the sequencer was down.
    chaos = point.chaos
    assert chaos["failovers"] == 1
    events = [e["event"] for e in chaos["events"]]
    assert events.count("metalog-crash") == 1
    assert "metalog-failover" in events
    assert point.fenced_appends + point.unavailable_ops > 0


def test_shard_kill_at_r1_rebuilds_and_stays_exactly_once():
    point = run_storagechaos_point("halfmoon-read", "shard-replica",
                                   **POINT_KW)
    assert point.violations == 0
    assert point.anomalies == []
    assert point.rebuilds >= 1
    assert point.unavailable_ops > 0  # ops bounced off the down shard


def test_shard_kill_at_r3_promotes_without_rebuild():
    point = run_storagechaos_point(
        "halfmoon-write", "shard-replica", replication=3, **POINT_KW
    )
    assert point.violations == 0
    assert point.anomalies == []
    # Promotion keeps the shard serving: no rebuild, no unavailability.
    assert point.rebuilds == 0
    assert point.unavailable_ops == 0
    events = [e["event"] for e in point.chaos["events"]]
    assert "shard-replica-crash" in events
    assert "shard-repair" in events


def test_partition_kill_rebuild_diffs_clean():
    point = run_storagechaos_point("boki", "partition", **POINT_KW)
    assert point.violations == 0
    assert point.anomalies == []
    assert point.rebuild_diffs == []
    assert point.chaos["partition_rebuilds"] >= 1


def test_netsplit_injects_without_violations():
    point = run_storagechaos_point("boki", "netsplit", **POINT_KW)
    assert point.violations == 0
    assert point.anomalies == []
    netsplits = sum(
        count for label, count in point.injected.items()
        if ":netsplit:" in label
    )
    assert netsplits > 0


def test_unsafe_control_violates():
    # Storage faults are omission-only; the composed instance crashes
    # are what the unchecksummed baseline cannot survive.
    point = run_storagechaos_point("unsafe", "metalog", **POINT_KW)
    assert point.violations > 0


def test_unknown_component_rejected():
    with pytest.raises(ValueError):
        run_storagechaos_point("boki", "quantum-foam", **POINT_KW)


def _small_sweep(jobs):
    return run_storagechaos_sweep(
        components=("metalog", "partition"),
        systems=("boki",),
        replications=(1,),
        crash_at_ms=POINT_KW["crash_at_ms"],
        recover_after_ms=POINT_KW["recover_after_ms"],
        rate_per_s=POINT_KW["rate_per_s"],
        duration_ms=POINT_KW["duration_ms"],
        seed=11,
        jobs=jobs,
    )


def test_sweep_bit_identical_across_jobs():
    serial = _small_sweep(jobs=1)
    parallel = _small_sweep(jobs=2)
    assert serial.rows == parallel.rows
    assert serial.render() == parallel.render()


def test_sweep_grid_covers_all_components():
    assert set(DEFAULT_COMPONENTS) == {
        "metalog", "shard-replica", "partition", "netsplit"
    }
