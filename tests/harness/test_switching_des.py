"""Direct assertions on switching behaviour inside the DES platform."""

import pytest

from repro import SystemConfig
from repro.config import ClusterConfig
from repro.harness import SimPlatform
from repro.workloads import MixedRatioWorkload


def build_platform(protocol="halfmoon-write", workers=8):
    config = SystemConfig(
        seed=37,
        cluster=ClusterConfig(function_nodes=2, workers_per_node=workers),
    )
    platform = SimPlatform(
        MixedRatioWorkload(0.3, num_keys=200), protocol, config,
        enable_switching=True,
    )
    return platform


def test_switch_during_des_traffic_completes():
    platform = build_platform()
    platform.at(1_000.0, lambda: platform.runtime.begin_switch(
        "halfmoon-read"
    ))
    result = platform.run(100.0, 3_000.0)
    manager = platform.runtime.switch_manager
    assert not manager.in_progress
    assert manager.current_protocol == "halfmoon-read"
    assert result.completed > 100


def test_switch_history_carries_sim_timestamps():
    platform = build_platform()
    platform.at(1_000.0, lambda: platform.runtime.begin_switch(
        "halfmoon-read"
    ))
    platform.run(100.0, 3_000.0)
    entry = platform.runtime.switch_manager.switch_history[0]
    assert entry["begin_time_ms"] == pytest.approx(1_000.0, abs=1.0)
    assert entry["end_time_ms"] > entry["begin_time_ms"]
    assert entry["delay_ms"] == pytest.approx(
        entry["end_time_ms"] - entry["begin_time_ms"]
    )


def test_values_survive_des_switch():
    platform = build_platform()
    platform.at(1_500.0, lambda: platform.runtime.begin_switch(
        "halfmoon-read"
    ))
    platform.run(120.0, 4_000.0)
    # Every populated key still resolves through the new protocol.
    runtime = platform.runtime
    probe = runtime.open_session().init()
    workload = platform.workload
    for i in range(0, 200, 37):
        value = probe.read(workload.key(i))
        assert value is not None
    probe.finish()


def test_back_to_back_switches_in_des():
    platform = build_platform()
    platform.at(800.0, lambda: platform.runtime.begin_switch(
        "halfmoon-read"
    ))

    def second():
        manager = platform.runtime.switch_manager
        if not manager.in_progress:
            platform.runtime.begin_switch("halfmoon-write")

    platform.at(2_000.0, second)
    platform.run(100.0, 3_500.0)
    history = platform.runtime.switch_manager.switch_history
    assert [h["to"] for h in history] == [
        "halfmoon-read", "halfmoon-write"
    ]


def test_gc_runs_during_switched_traffic():
    config = SystemConfig(
        seed=37,
        cluster=ClusterConfig(function_nodes=2, workers_per_node=8),
    ).with_gc_interval(500.0)
    platform = SimPlatform(
        MixedRatioWorkload(0.3, num_keys=100), "halfmoon-write", config,
        enable_switching=True,
    )
    platform.at(1_000.0, lambda: platform.runtime.begin_switch(
        "halfmoon-read"
    ))
    platform.run(80.0, 3_000.0)
    assert platform.runtime.gc.stats.scans >= 4
    assert platform.runtime.gc.stats.total_trimmed() > 0
