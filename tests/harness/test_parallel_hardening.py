"""run_cells resilience: worker death must not kill the sweep.

A sweep cell is pure compute, but the *process* running it can die for
reasons outside the cell's control (OOM killer, a stray SIGKILL from
the live chaos controller's own tests, a segfault in a native wheel).
``run_cells`` promises: every cell still yields its result — lost cells
are re-run serially once — and the incident surfaces as a crash note in
the sweep report rather than vanishing into stderr.
"""

import os
import signal

import pytest

from repro.harness.parallel import (
    SweepCell,
    SweepInterrupted,
    pop_crash_notes,
    run_cells,
    seed_for,
)
from repro.harness.report import ExperimentTable


def well_behaved(value):
    return value * 2


def die_if_marked(value, victim, parent_pid):
    """Module-level so it pickles into pool workers; the victim cell
    SIGKILLs its own *worker* process, mimicking an OOM kill.  The
    parent pid gate keeps the serial re-run (which executes in the
    sweep's own process) alive."""
    if value == victim and os.getpid() != parent_pid:
        os.kill(os.getpid(), signal.SIGKILL)
    return value * 2


def make_cells(fn, count=6, **extra):
    return [
        SweepCell(key=("cell", i), fn=fn, kwargs=dict(value=i, **extra))
        for i in range(count)
    ]


def test_worker_death_falls_back_to_serial_rerun():
    results = run_cells(
        make_cells(die_if_marked, victim=3, parent_pid=os.getpid()),
        jobs=2,
    )
    # Every cell completed, in order — including the one whose worker
    # died: it was re-run serially in the parent process.
    assert results == [i * 2 for i in range(6)]
    notes = pop_crash_notes()
    assert len(notes) == 1
    assert "re-ran" in notes[0]


def test_crash_notes_surface_after_pool_break():
    run_cells(make_cells(well_behaved), jobs=2)
    assert pop_crash_notes() == []  # healthy sweep: no notes


def test_pop_crash_notes_clears():
    run_cells(make_cells(well_behaved), jobs=2)
    pop_crash_notes()
    assert pop_crash_notes() == []


def test_sweep_interrupted_carries_progress():
    exc = SweepInterrupted(3, 10)
    assert exc.completed == 3
    assert exc.total == 10
    assert "3/10" in str(exc)


def test_results_bit_identical_across_job_counts():
    cells = make_cells(well_behaved, count=8)
    assert run_cells(cells, jobs=1) == run_cells(cells, jobs=4)


def test_seed_for_is_stable_and_key_sensitive():
    assert seed_for(7, ("a", 1)) == seed_for(7, ("a", 1))
    assert seed_for(7, ("a", 1)) != seed_for(7, ("a", 2))
    assert seed_for(7, ("a", 1)) != seed_for(8, ("a", 1))


def test_bad_jobs_value_rejected():
    with pytest.raises(Exception):
        run_cells(make_cells(well_behaved, count=2), jobs=0)


def test_crash_note_lands_in_report_table():
    # End-to-end shape of satellite 1: a broken pool's note is appended
    # to the experiment table exactly like every sweep does it.
    run_cells(
        make_cells(die_if_marked, victim=1, count=4,
                   parent_pid=os.getpid()),
        jobs=2,
    )
    table = ExperimentTable("t", ["a"])
    for note in pop_crash_notes():
        table.add_note(note)
    assert any("re-ran" in note for note in table.notes)
