"""Unit tests for experiment tables."""

import pytest

from repro.harness import ExperimentTable


@pytest.fixture
def table():
    t = ExperimentTable("Demo", ["system", "rate", "median (ms)"])
    t.add_row("boki", 100, 12.5)
    t.add_row("halfmoon-read", 100, 9.25)
    return t


def test_add_row_checks_width(table):
    with pytest.raises(ValueError):
        table.add_row("only-one")


def test_column(table):
    assert table.column("system") == ["boki", "halfmoon-read"]
    assert table.column("median (ms)") == [12.5, 9.25]


def test_lookup(table):
    value = table.lookup({"system": "boki", "rate": 100}, "median (ms)")
    assert value == 12.5
    with pytest.raises(KeyError):
        table.lookup({"system": "nope"}, "median (ms)")


def test_render_text(table):
    table.add_note("a note")
    text = table.render()
    assert "Demo" in text
    assert "boki" in text
    assert "12.50" in text
    assert "note: a note" in text


def test_render_markdown(table):
    md = table.render_markdown()
    assert md.startswith("### Demo")
    assert "| boki | 100 | 12.50 |" in md


def test_crossover_ratio_interpolates():
    from repro.harness import crossover_ratio

    t = ExperimentTable("x", ["system", "read ratio", "m"])
    ratios = (0.1, 0.5, 0.9)
    # HM-read falls from 30 to 10; HM-write rises from 10 to 30;
    # they cross exactly at 0.5.
    for r, read_v, write_v in [(0.1, 30.0, 10.0), (0.5, 20.0, 20.0),
                               (0.9, 10.0, 30.0)]:
        t.add_row("halfmoon-read", r, read_v)
        t.add_row("halfmoon-write", r, write_v)
    assert crossover_ratio(t, "m", ratios) == pytest.approx(0.5)


def test_crossover_ratio_never_crossing():
    from repro.harness import crossover_ratio

    t = ExperimentTable("x", ["system", "read ratio", "m"])
    for r in (0.1, 0.9):
        t.add_row("halfmoon-read", r, 5.0)
        t.add_row("halfmoon-write", r, 1.0)
    assert crossover_ratio(t, "m", (0.1, 0.9)) == 1.0


def test_crossover_ratio_always_below():
    from repro.harness import crossover_ratio

    t = ExperimentTable("x", ["system", "read ratio", "m"])
    for r in (0.1, 0.9):
        t.add_row("halfmoon-read", r, 1.0)
        t.add_row("halfmoon-write", r, 5.0)
    assert crossover_ratio(t, "m", (0.1, 0.9)) == 0.1
