"""Logging-layer contention model.

Validates the paper's Section 6.2 remark — "logging is typically not the
bottleneck of Boki" — and that the model has teeth when the layer is
made artificially slow.
"""

import pytest

from repro import SystemConfig
from repro.config import ClusterConfig
from repro.harness import SimPlatform
from repro.workloads import MixedRatioWorkload


def run(contention: bool, sequencer_service_ms: float = 0.02,
        rate: float = 250.0):
    config = SystemConfig(
        seed=4,
        cluster=ClusterConfig(
            function_nodes=4, workers_per_node=8,
            model_log_contention=contention,
            sequencer_service_ms=sequencer_service_ms,
        ),
    )
    platform = SimPlatform(
        MixedRatioWorkload(0.5, num_keys=300), "boki", config
    )
    result = platform.run(rate, 4_000.0, warmup_ms=800.0)
    return platform, result


def test_logging_layer_is_not_the_bottleneck():
    """With realistic sequencer/shard service times the added queueing is
    negligible: per-request log wait well under a millisecond."""
    platform_off, result_off = run(contention=False)
    platform_on, result_on = run(contention=True)
    assert result_on.median_ms == pytest.approx(
        result_off.median_ms, rel=0.05
    )
    per_request_wait = platform_on.log_wait_ms_total / max(
        result_on.completed, 1
    )
    assert per_request_wait < 1.0


def test_contention_disabled_tracks_no_waits():
    platform, _ = run(contention=False)
    assert platform.log_wait_ms_total == 0.0


def test_slow_sequencer_does_bottleneck():
    """Sanity check that the model is live: a 0.3 ms per-append sequencer
    cannot sustain ~5000 appends/s and the backlog explodes."""
    _, fast = run(contention=True, sequencer_service_ms=0.02)
    _, slow = run(contention=True, sequencer_service_ms=0.3)
    assert slow.median_ms > fast.median_ms * 3


def test_halfmoon_gains_survive_contention_model():
    """Relative protocol ordering is unchanged with the model on."""
    def median(protocol):
        config = SystemConfig(
            seed=4,
            cluster=ClusterConfig(
                function_nodes=4, workers_per_node=8,
                model_log_contention=True,
            ),
        )
        platform = SimPlatform(
            MixedRatioWorkload(0.8, num_keys=300), protocol, config
        )
        return platform.run(250.0, 4_000.0, warmup_ms=800.0).median_ms

    boki = median("boki")
    hm_read = median("halfmoon-read")
    assert hm_read < boki
