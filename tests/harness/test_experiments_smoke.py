"""Small-scale runs of every experiment, asserting the paper's shapes.

These are the same harness entry points the benchmarks use, scaled down
so the whole file runs in well under a minute.  Each test encodes the
acceptance criteria from DESIGN.md.
"""

import pytest

from repro import SystemConfig
from repro.config import ClusterConfig
from repro.harness import (
    crossover_ratio,
    run_fig10,
    run_fig12,
    run_fig13,
    run_fig14_point,
    run_recovery_sweep,
    run_table1,
)

SMALL = SystemConfig(
    seed=31, cluster=ClusterConfig(function_nodes=2, workers_per_node=6)
)


class TestTable1:
    def test_primitive_latencies_match_paper(self):
        table = run_table1(samples=4_000)
        log_median = table.lookup({"metric": "median"}, "Log (ms)")
        read_median = table.lookup({"metric": "median"}, "Read (ms)")
        write_median = table.lookup({"metric": "median"}, "Write (ms)")
        assert log_median == pytest.approx(1.18, rel=0.10)
        assert read_median == pytest.approx(1.88, rel=0.10)
        assert write_median == pytest.approx(2.47, rel=0.10)
        # Ordering: log < read < write, at median and at the tail.
        assert log_median < read_median < write_median
        p99s = [
            table.lookup({"metric": "99%-tile"}, col)
            for col in ("Log (ms)", "Read (ms)", "Write (ms)")
        ]
        assert p99s == sorted(p99s)


class TestFig10:
    @pytest.fixture(scope="class")
    def tables(self):
        return run_fig10(requests=600, num_keys=800)

    def median(self, tables, op, system):
        return tables[op].lookup({"system": system}, "median (ms)")

    def test_read_shape(self, tables):
        unsafe = self.median(tables, "read", "unsafe")
        boki = self.median(tables, "read", "boki")
        hm_read = self.median(tables, "read", "halfmoon-read")
        hm_write = self.median(tables, "read", "halfmoon-write")
        # HM-read 20-40% below Boki; HM-write ~= Boki; small overhead
        # over raw.
        assert 0.60 <= hm_read / boki <= 0.85
        assert hm_write == pytest.approx(boki, rel=0.10)
        assert 1.0 <= hm_read / unsafe <= 1.35

    def test_write_shape(self, tables):
        unsafe = self.median(tables, "write", "unsafe")
        boki = self.median(tables, "write", "boki")
        hm_read = self.median(tables, "write", "halfmoon-read")
        hm_write = self.median(tables, "write", "halfmoon-write")
        # HM-write 25-45% below Boki; HM-read ~= Boki (aligned logging).
        assert 0.50 <= hm_write / boki <= 0.75
        assert hm_read == pytest.approx(boki, rel=0.12)
        assert hm_write > unsafe  # conditional update cost remains

    def test_read_overhead_ratio(self, tables):
        """HM-read's overhead over raw reads is several times below
        Boki's (paper: 4-5x)."""
        unsafe = self.median(tables, "read", "unsafe")
        boki = self.median(tables, "read", "boki")
        hm_read = self.median(tables, "read", "halfmoon-read")
        ratio = (boki - unsafe) / max(hm_read - unsafe, 1e-9)
        assert ratio > 2.0


class TestFig12:
    def test_storage_crossover_slightly_above_half(self):
        table = run_fig12(
            value_bytes=256, gc_interval_ms=5_000.0,
            read_ratios=(0.1, 0.3, 0.5, 0.7, 0.9),
            config=SMALL, rate_per_s=40.0, duration_ms=12_000.0,
            num_keys=200,
        )
        crossing = crossover_ratio(
            table, "avg total (KB)", (0.1, 0.3, 0.5, 0.7, 0.9)
        )
        assert 0.45 <= crossing <= 0.70
        # Monotone trends: HM-read shrinks, HM-write grows with reads.
        hm_read = [
            table.lookup(
                {"system": "halfmoon-read", "read ratio": r},
                "avg total (KB)",
            ) for r in (0.1, 0.5, 0.9)
        ]
        hm_write = [
            table.lookup(
                {"system": "halfmoon-write", "read ratio": r},
                "avg total (KB)",
            ) for r in (0.1, 0.5, 0.9)
        ]
        assert hm_read[0] > hm_read[-1]
        assert hm_write[0] < hm_write[-1]

    def test_boki_storage_above_best_protocol(self):
        table = run_fig12(
            value_bytes=256, gc_interval_ms=5_000.0,
            read_ratios=(0.1, 0.9), config=SMALL,
            rate_per_s=40.0, duration_ms=10_000.0, num_keys=200,
        )
        for ratio in (0.1, 0.9):
            boki = table.lookup(
                {"system": "boki", "read ratio": ratio}, "avg total (KB)"
            )
            best = min(
                table.lookup(
                    {"system": s, "read ratio": ratio}, "avg total (KB)"
                )
                for s in ("halfmoon-read", "halfmoon-write")
            )
            assert boki > best


class TestFig13:
    def test_runtime_crossover_near_two_thirds(self):
        tables = run_fig13(
            rates=(150.0,), read_ratios=(0.1, 0.3, 0.5, 0.7, 0.9),
            config=SMALL, duration_ms=5_000.0, num_keys=400,
        )
        crossing = crossover_ratio(
            tables[150.0], "median (ms)", (0.1, 0.3, 0.5, 0.7, 0.9)
        )
        assert 0.55 <= crossing <= 0.85

    def test_both_protocols_beat_boki(self):
        tables = run_fig13(
            rates=(150.0,), read_ratios=(0.1, 0.9),
            config=SMALL, duration_ms=5_000.0, num_keys=400,
        )
        table = tables[150.0]
        for ratio in (0.1, 0.9):
            boki = table.lookup(
                {"system": "boki", "read ratio": ratio}, "median (ms)"
            )
            for system in ("halfmoon-read", "halfmoon-write"):
                assert table.lookup(
                    {"system": system, "read ratio": ratio}, "median (ms)"
                ) < boki


class TestFig14:
    def test_switching_is_subsecond_and_asymmetric_under_load(self):
        moderate = run_fig14_point(250.0, num_keys=400)
        heavy = run_fig14_point(600.0, num_keys=400)
        for result in (moderate, heavy):
            assert result.delays_ms()
            assert max(result.delays_ms()) < 1_000.0
        # Under load, draining the write phase takes longer than the
        # read phase (write-phase SSFs are slower and more backlogged).
        to_read_heavy = heavy.delay_for("halfmoon-read")
        to_write_heavy = heavy.delay_for("halfmoon-write")
        assert max(to_read_heavy) > max(to_write_heavy)
        # And the heavy load slows switching relative to moderate load.
        assert max(heavy.delays_ms()) > max(moderate.delays_ms())


class TestRecovery:
    def test_halfmoon_beats_boki_at_realistic_failure_rates(self):
        table = run_recovery_sweep(
            f_values=(0.0, 0.2), read_ratio=0.4,
            systems=("boki", "halfmoon-write"), requests=150,
        )
        for f in (0.0, 0.2):
            boki = table.lookup({"system": "boki", "f": f}, "mean (ms)")
            halfmoon = table.lookup(
                {"system": "halfmoon-write", "f": f}, "mean (ms)"
            )
            assert halfmoon < boki
