"""Tests for the failover experiment harness."""

import pytest

from repro.harness.failover import (
    CounterWorkload,
    run_failover_point,
    run_failover_sweep,
)

#: One small, fully deterministic point shared by several assertions.
#: The long compute step keeps the crashed node's workers saturated, so
#: the crash reliably strands in-flight invocations.
POINT_KW = dict(
    lease_ms=200.0,
    crash_at_ms=500.0,
    rate_per_s=500.0,
    duration_ms=1_500.0,
    seed=7,
    compute_ms=40.0,
    drain_ms=12_000.0,
)


@pytest.fixture(scope="module")
def boki_point():
    return run_failover_point("boki", **POINT_KW)


def test_crash_orphans_and_recovers_invocations(boki_point):
    result = boki_point.result
    assert result.node_crashes == 1
    assert result.orphaned_invocations > 0
    assert result.recovered_orphans == result.orphaned_invocations
    assert result.takeover_ms.count == result.recovered_orphans


def test_exactly_once_audit_is_clean(boki_point):
    assert boki_point.violations == 0
    assert boki_point.expected_bumps > 0
    assert boki_point.result.completed > 0


def test_detection_latency_within_lease_window(boki_point):
    detect = boki_point.result.detection_ms
    assert detect.count == 1
    lease = POINT_KW["lease_ms"]
    # Renewal at most one heartbeat (lease/5) before the crash; the
    # detector fires within one poll (lease/20) of expiry.
    assert lease * 0.8 <= detect.mean() <= lease * 1.05


def test_takeover_latency_scales_with_lease():
    kw = dict(POINT_KW)
    del kw["lease_ms"]
    short = run_failover_point("halfmoon-read", lease_ms=100.0, **kw)
    long = run_failover_point("halfmoon-read", lease_ms=1_600.0, **kw)
    assert short.result.orphaned_invocations > 0
    assert long.result.orphaned_invocations > 0
    assert (long.result.takeover_ms.mean()
            > 4 * short.result.takeover_ms.mean())


def test_point_is_deterministic(boki_point):
    again = run_failover_point("boki", **POINT_KW)
    a, b = boki_point.result, again.result
    assert a.completed == b.completed
    assert a.orphaned_invocations == b.orphaned_invocations
    assert a.recovered_orphans == b.recovered_orphans
    assert a.median_ms == b.median_ms
    assert a.p99_ms == b.p99_ms
    assert boki_point.violations == again.violations
    assert (a.takeover_ms.samples if a.takeover_ms else []) == (
        b.takeover_ms.samples if b.takeover_ms else []
    )


def test_exactly_once_under_composed_faults():
    # Node crash composed with 5% infrastructure faults: still clean.
    for protocol in ("boki", "halfmoon-read", "halfmoon-write"):
        point = run_failover_point(protocol, fault_rate=0.05, **POINT_KW)
        assert point.violations == 0, protocol
        assert point.result.recovered_orphans == (
            point.result.orphaned_invocations
        ), protocol


def test_sweep_table_shape():
    table = run_failover_sweep(
        lease_values=(200.0,), systems=("halfmoon-write",),
        crash_at_ms=500.0, rate_per_s=500.0, duration_ms=1_500.0,
        seed=7, fault_rate=0.0, compute_ms=40.0,
    )
    assert table.column("system") == ["halfmoon-write"]
    assert table.column("violations") == [0]
    assert table.lookup({"system": "halfmoon-write"}, "recovery") == (
        "re-execute log-free writes"
    )
    assert table.lookup({"system": "halfmoon-write"}, "recovered") > 0
    out = table.render()
    assert "takeover p99 (ms)" in out


def test_counter_workload_exhaustion_guard():
    import numpy as np

    workload = CounterWorkload(num_keys=2, read_ratio=0.0)
    rng = np.random.default_rng(0)
    workload.next_request(rng)
    workload.next_request(rng)
    with pytest.raises(RuntimeError):
        workload.next_request(rng)
