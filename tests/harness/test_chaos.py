"""Tests for the chaos experiment harness."""

from repro.harness import (
    run_brownout_comparison,
    run_chaos_point,
    run_chaos_sweep,
)
from repro.harness.chaos import EXACTLY_ONCE_SYSTEMS

QUICK = dict(requests=60, num_keys=12)


class TestChaosPoint:
    def test_logged_protocols_report_zero_violations(self):
        for system in EXACTLY_ONCE_SYSTEMS:
            point = run_chaos_point(system, 0.1, seed=42, **QUICK)
            assert point.violations == 0, system
            assert point.retries > 0  # faults were actually injected

    def test_unsafe_violates_under_crashes(self):
        point = run_chaos_point("unsafe", 0.1, seed=42, **QUICK)
        assert point.violations > 0
        assert point.crashes_fired > 0

    def test_fault_free_point_has_no_retries(self):
        point = run_chaos_point("boki", 0.0, seed=42, crash_f=0.0,
                                **QUICK)
        assert point.retries == 0
        assert point.violations == 0
        assert point.crashes_fired == 0

    def test_goodput_positive(self):
        point = run_chaos_point("halfmoon-read", 0.05, seed=42, **QUICK)
        assert point.goodput_per_s > 0


class TestChaosSweep:
    def test_sweep_is_deterministic_per_seed(self):
        render = lambda: run_chaos_sweep(  # noqa: E731
            fault_rates=(0.0, 0.1), systems=("unsafe", "boki"),
            seed=7, **QUICK,
        ).render()
        assert render() == render()

    def test_sweep_rows_cover_grid(self):
        table = run_chaos_sweep(
            fault_rates=(0.0, 0.05), systems=("boki", "halfmoon-read"),
            seed=7, **QUICK,
        )
        assert len(table.rows) == 4
        out = table.render()
        assert "violations" in out
        assert "p99 amp" in out


class TestBrownout:
    def test_fallback_beats_no_fallback_on_log_read_p99(self):
        table = run_brownout_comparison(requests=150, num_keys=15,
                                        seed=11)
        rows = {row[0]: row for row in table.rows}
        assert set(rows) == {"on", "off"}
        on, off = rows["on"], rows["off"]
        # columns: fallback, median, p99, degraded, trips, request p99
        assert on[3] > 0, "fallback run must serve degraded reads"
        assert off[3] == 0
        assert on[2] < off[2], (
            "cache fallback should lower log-read p99 under brown-out"
        )
