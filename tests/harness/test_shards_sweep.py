"""The storage-plane scaling sweep: per-shard stations in the DES,
saturation relief from 1 → 4 shards, and low-load neutrality."""

import pytest

from repro.config import SystemConfig
from repro.harness import (
    SimPlatform,
    run_shard_point,
    run_shard_sweep,
    shard_sweep_config,
)
from repro.workloads import MixedRatioWorkload


def test_sweep_config_selects_sharded_backend_and_contention():
    config = shard_sweep_config(4)
    assert config.storage.backend == "sharded"
    assert config.storage.log_shards == 4
    assert config.storage.kv_partitions == 4
    assert config.cluster.model_log_contention
    assert config.cluster.model_store_contention


def test_platform_sizes_stations_from_the_plane():
    platform = SimPlatform(
        MixedRatioWorkload(0.5, num_keys=100), "boki",
        shard_sweep_config(4),
    )
    assert len(platform._shard_next_free) == 4
    assert len(platform._store_next_free) == 4
    default = SimPlatform(
        MixedRatioWorkload(0.5, num_keys=100), "boki",
        SystemConfig(),
    )
    # Unlabelled plane: the seed's round-robin storage-node stations.
    assert len(default._shard_next_free) == (
        default.config.cluster.storage_nodes
    )


def test_p99_improves_with_shards_at_high_load():
    """The acceptance shape: at saturating load, p99 strictly improves
    from 1 to 4 log shards; at low load the medians agree to noise."""
    high = {
        shards: run_shard_point(
            shards, 600.0, duration_ms=2_500.0, warmup_ms=500.0,
            num_keys=800, config=SystemConfig(seed=42),
        )
        for shards in (1, 4)
    }
    assert high[4].p99_ms < high[1].p99_ms
    assert (high[4].extras["log_wait_ms_total"]
            < high[1].extras["log_wait_ms_total"])
    low = {
        shards: run_shard_point(
            shards, 60.0, duration_ms=2_500.0, warmup_ms=500.0,
            num_keys=800, config=SystemConfig(seed=42),
        )
        for shards in (1, 4)
    }
    assert low[4].median_ms == pytest.approx(low[1].median_ms, rel=0.10)


def test_sweep_table_shape_and_determinism():
    kwargs = dict(
        shard_counts=(1, 2), rates=(80.0,), duration_ms=1_500.0,
        warmup_ms=300.0, num_keys=200, config=SystemConfig(seed=7),
    )
    table = run_shard_sweep(**kwargs)
    again = run_shard_sweep(**kwargs)
    assert table.headers == ["log shards", "rate (req/s)", "median (ms)",
                             "p99 (ms)", "log wait (ms/req)",
                             "seq occupancy"]
    assert len(table.rows) == 2
    assert table.rows == again.rows  # same seed → same table


def test_sharded_run_reports_placement_metrics():
    result = run_shard_point(
        2, 80.0, duration_ms=1_200.0, warmup_ms=200.0, num_keys=200,
        config=SystemConfig(seed=3),
    )
    assert any("shard=" in name for name in result.metrics)
    storage_keys = [name for name in result.metrics
                    if name.startswith("storage_bytes")]
    assert any("shard=" in name for name in storage_keys)
    assert any("partition=" in name for name in storage_keys)
