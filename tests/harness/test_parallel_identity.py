"""Golden serial-vs-parallel identity for the sweep executor.

The executor's contract is not "statistically equivalent" but
*bit-identical*: the same table rows, at full float precision, whether
a sweep's cells run inline or fan out over a process pool.  These
tests diff full JSON payloads byte-for-byte between ``jobs=1`` and
``jobs=4`` for the two canonical sweeps (the Figure 10 micro sweep and
the 4-shard scaling sweep) across boki, Halfmoon-read, and
Halfmoon-write, plus the traced variant (absorbed child tracers must
reproduce the single-tracer span-id sequence exactly).
"""

import json

from repro import SystemConfig
from repro.harness import (
    run_cells,
    run_fig10,
    run_shard_sweep,
    seed_for,
    SweepCell,
)
from repro.observe import Tracer

PROTOCOLS = ("boki", "halfmoon-read", "halfmoon-write")


def _table_json(table) -> str:
    """Full-precision JSON payload of a table (no render() rounding)."""
    return json.dumps(
        {
            "name": table.name,
            "headers": table.headers,
            "rows": table.rows,
            "notes": table.notes,
        },
        sort_keys=True,
    )


def _cell_fn(value, scale=1.0):
    return value * scale


def test_seed_for_is_deterministic_and_key_sensitive():
    assert seed_for(7, ("shards", 4)) == seed_for(7, ("shards", 4))
    assert seed_for(7, ("shards", 4)) != seed_for(8, ("shards", 4))
    assert seed_for(7, ("shards", 4)) != seed_for(7, ("shards", 2))
    assert 0 <= seed_for(0, "x") < 2**31 - 1


def test_run_cells_preserves_cell_order():
    cells = [
        SweepCell(key=i, fn=_cell_fn, kwargs=dict(value=i, scale=10.0))
        for i in range(9)
    ]
    serial = run_cells(cells, jobs=1)
    parallel = run_cells(cells, jobs=4)
    assert serial == [i * 10.0 for i in range(9)]
    assert parallel == serial


def test_fig10_serial_parallel_byte_identical():
    def payloads(jobs):
        tables = run_fig10(
            config=SystemConfig(seed=17), requests=80, num_keys=300,
            systems=PROTOCOLS, jobs=jobs,
        )
        return {op: _table_json(t) for op, t in tables.items()}

    assert payloads(1) == payloads(4)


def test_shard_sweep_serial_parallel_byte_identical():
    def payload(jobs, protocol):
        table = run_shard_sweep(
            shard_counts=(1, 4), rates=(100.0, 600.0),
            protocol=protocol, config=SystemConfig(seed=91),
            duration_ms=1_500.0, warmup_ms=300.0, num_keys=500,
            jobs=jobs,
        )
        return _table_json(table)

    for protocol in PROTOCOLS:
        assert payload(1, protocol) == payload(4, protocol)


def test_traced_sweep_absorbs_to_identical_spans():
    def spans(jobs):
        tracer = Tracer()
        run_fig10(
            config=SystemConfig(seed=23), requests=40, num_keys=120,
            systems=("boki", "halfmoon-read"), tracer=tracer,
            jobs=jobs,
        )
        return [
            (
                s.trace_id, s.span_id, s.parent_id, s.name,
                s.category, s.start_ms, s.end_ms, repr(s.args),
                repr([(e.name, e.ts_ms, e.args) for e in s.events]),
            )
            for s in tracer.spans
        ]

    serial = spans(1)
    assert serial  # the sweep actually traced something
    assert spans(4) == serial
