"""Unit tests for the DES platform."""

import pytest

from repro import SystemConfig
from repro.config import ClusterConfig, FailureConfig, GCConfig
from repro.harness import SimPlatform
from repro.workloads import MixedRatioWorkload, ReadWriteMicrobench


def small_config(**kwargs):
    return SystemConfig(
        seed=21,
        cluster=ClusterConfig(function_nodes=2, workers_per_node=4),
        **kwargs,
    )


def run_small(protocol="halfmoon-read", rate=100.0, duration=2_000.0,
              config=None, workload=None, **run_kwargs):
    platform = SimPlatform(
        workload if workload is not None
        else ReadWriteMicrobench(num_keys=100),
        protocol,
        config if config is not None else small_config(),
    )
    return platform, platform.run(rate, duration, **run_kwargs)


def test_throughput_tracks_offered_load():
    _, result = run_small(rate=100.0, duration=4_000.0)
    assert result.throughput_per_s == pytest.approx(100.0, rel=0.15)
    assert result.completed > 300


def test_latency_statistics_populated():
    _, result = run_small()
    assert 0 < result.median_ms < result.p99_ms
    assert result.mean_ms > 0


def test_storage_gauges_positive():
    _, result = run_small()
    assert result.avg_log_bytes > 0
    assert result.avg_db_bytes > 0
    assert result.avg_total_bytes == pytest.approx(
        result.avg_log_bytes + result.avg_db_bytes
    )


def test_warmup_excludes_leading_samples():
    platform_a, result_a = run_small(duration=3_000.0, warmup_ms=0.0)
    platform_b, result_b = run_small(duration=3_000.0, warmup_ms=1_500.0)
    assert result_b.completed < result_a.completed


def test_runs_are_deterministic():
    _, a = run_small()
    _, b = run_small()
    assert a.completed == b.completed
    assert a.median_ms == b.median_ms


def test_saturation_raises_latency():
    # 8 workers; the microbench takes ~8 ms -> capacity ~1000/s.
    _, light = run_small(rate=200.0, duration=4_000.0)
    _, heavy = run_small(rate=950.0, duration=4_000.0)
    assert heavy.median_ms > light.median_ms


def test_gc_process_bounds_log_growth():
    config_gc = small_config(gc=GCConfig(interval_ms=500.0))
    platform, result = run_small(
        config=config_gc, duration=4_000.0,
        workload=MixedRatioWorkload(0.5, num_keys=50),
        rate=50.0,
    )
    no_gc = small_config(gc=GCConfig(interval_ms=500.0, enabled=False))
    platform2, result2 = run_small(
        config=no_gc, duration=4_000.0,
        workload=MixedRatioWorkload(0.5, num_keys=50),
        rate=50.0,
    )
    assert result.avg_log_bytes < result2.avg_log_bytes


def test_crash_injection_in_des():
    from repro.runtime import BernoulliCrashes

    platform = SimPlatform(
        ReadWriteMicrobench(num_keys=100), "halfmoon-read",
        small_config(),
    )
    platform.runtime.crash_policy = BernoulliCrashes(
        0.2, platform.runtime.backend.rng.stream("crash"), horizon=10
    )
    result = platform.run(100.0, 3_000.0)
    assert result.crashed_attempts > 0
    assert result.completed > 0


def test_scheduled_action_fires():
    platform = SimPlatform(
        ReadWriteMicrobench(num_keys=10), "halfmoon-read", small_config()
    )
    fired = []
    platform.at(500.0, lambda: fired.append(platform.sim.now))
    platform.run(50.0, 1_000.0)
    assert fired == [500.0]


def test_latency_series_recorded():
    _, result = run_small()
    assert len(result.latency_series.points) == result.completed


def test_counters_exposed():
    _, result = run_small(protocol="boki")
    assert result.counters.get("log_append", 0) > 0
    assert result.counters.get("db_read", 0) > 0
