"""Unit tests for the microbenchmark harness itself."""

import pytest

from repro import SystemConfig
from repro.harness import measure_op_latencies, run_table1


def test_measure_returns_read_and_write_recorders():
    result = measure_op_latencies(
        "boki", SystemConfig(seed=2), requests=50, num_keys=50
    )
    assert set(result) == {"read", "write"}
    assert result["read"].count == 50
    assert result["write"].count == 50


def test_measurements_are_deterministic():
    a = measure_op_latencies(
        "halfmoon-read", SystemConfig(seed=2), requests=40, num_keys=40
    )
    b = measure_op_latencies(
        "halfmoon-read", SystemConfig(seed=2), requests=40, num_keys=40
    )
    assert a["read"].samples == b["read"].samples
    assert a["write"].samples == b["write"].samples


def test_different_seeds_differ():
    a = measure_op_latencies(
        "boki", SystemConfig(seed=1), requests=40, num_keys=40
    )
    b = measure_op_latencies(
        "boki", SystemConfig(seed=2), requests=40, num_keys=40
    )
    assert a["read"].samples != b["read"].samples


def test_op_latency_excludes_init_cost():
    """The measured per-op latencies must be in the range of single
    operations, not whole invocations."""
    result = measure_op_latencies(
        "unsafe", SystemConfig(seed=3), requests=60, num_keys=50
    )
    # An unsafe read is one raw DB read: ~1.9 ms median.
    assert 1.0 < result["read"].median() < 3.0
    assert 1.5 < result["write"].median() < 4.0


def test_table1_row_structure():
    table = run_table1(samples=500)
    assert table.column("metric") == ["median", "99%-tile"]
    assert len(table.headers) == 4
    assert table.rows[0][1] < table.rows[1][1]  # median < p99
