"""Unit tests for the movie-review workload."""

import numpy as np
import pytest

from repro.workloads import MovieReviewWorkload
from repro.workloads.movie import (
    counter_key,
    movie_reviews_key,
    rating_key,
    user_reviews_key,
)
from tests.conftest import make_runtime


@pytest.fixture
def setup(protocol_name):
    runtime = make_runtime(protocol_name)
    wl = MovieReviewWorkload(num_movies=5, num_users=6)
    wl.register(runtime)
    wl.populate(runtime)
    return runtime, wl


def compose(runtime, movie=1, user=2, stars=4):
    return runtime.invoke("movie.frontend", {
        "action": "compose", "movie": movie, "user": user,
        "stars": stars, "text": "  padded review text  ",
    })


def test_thirteen_ssfs_registered(setup):
    runtime, _ = setup
    assert len(runtime.functions.names()) == 13


def test_compose_review_updates_all_stores(setup):
    runtime, _ = setup
    out = compose(runtime, movie=1, user=2, stars=4)
    assert out.output["status"] == "posted"
    review_id = out.output["review"]
    probe = runtime.open_session().init()
    assert probe.read(counter_key()) == review_id
    assert probe.read(f"review{review_id:07d}")["stars"] == 4
    assert review_id in probe.read(movie_reviews_key(1))
    assert review_id in probe.read(user_reviews_key(2))
    rating = probe.read(rating_key(1))
    assert rating == {"sum": 4, "count": 1}
    probe.finish()


def test_text_sanitised(setup):
    runtime, _ = setup
    out = compose(runtime)
    review_id = out.output["review"]
    probe = runtime.open_session().init()
    assert probe.read(f"review{review_id:07d}")["text"] == (
        "padded review text"
    )
    probe.finish()


def test_ratings_aggregate_across_reviews(setup):
    runtime, _ = setup
    compose(runtime, movie=0, stars=2)
    compose(runtime, movie=0, stars=4)
    probe = runtime.open_session().init()
    assert probe.read(rating_key(0)) == {"sum": 6, "count": 2}
    probe.finish()


def test_page_view_returns_info_and_reviews(setup):
    runtime, _ = setup
    compose(runtime, movie=3, stars=5)
    out = runtime.invoke("movie.frontend", {
        "action": "page", "movie": 3, "user": 0,
        "stars": 0, "text": "",
    })
    page = out.output["page"]
    assert page["info"]["title"] == "title0003"
    assert page["info"]["rating"] == 5.0
    assert len(page["reviews"]) == 1
    assert page["cast"]


def test_unique_ids_monotone(setup):
    runtime, _ = setup
    ids = [compose(runtime).output["review"] for _ in range(3)]
    assert ids == sorted(ids)
    assert len(set(ids)) == 3


def test_request_mix(setup):
    _, wl = setup
    rng = np.random.default_rng(9)
    actions = [wl.next_request(rng).input["action"] for _ in range(300)]
    compose_fraction = actions.count("compose") / len(actions)
    assert compose_fraction == pytest.approx(0.7, abs=0.08)


def test_profile_is_write_leaning():
    wl = MovieReviewWorkload()
    reads, writes = wl.read_write_profile()
    assert writes > 0.4 * (reads + writes)
