"""Seeded-determinism pins for the shared :class:`ZipfSampler` and the
skewed-population workload built on it.

The sampler was hoisted out of retwis so retwis and the scale
experiment's :class:`SkewedWorkload` draw from one implementation; these
tests pin (a) the draw semantics to the historical inline rejection
loop, bit for bit, and (b) the workload's determinism and lazy-key
behaviour at 10⁵–10⁶ users.
"""

import numpy as np
import pytest

from repro.workloads import (
    DiurnalCurve,
    RetwisWorkload,
    SkewedWorkload,
    ZipfSampler,
)


def _historical_zipf(rng, s, population):
    """The rejection loop retwis carried inline before the hoist."""
    while True:
        draw = int(rng.zipf(s))
        if draw <= population:
            return draw - 1


# ----------------------------------------------------------------------
# ZipfSampler
# ----------------------------------------------------------------------

@pytest.mark.parametrize("seed", [0, 7, 91])
@pytest.mark.parametrize("s, population", [(1.2, 100), (2.0, 100_000)])
def test_sampler_matches_historical_inline_loop(seed, s, population):
    sampler = ZipfSampler(s, population)
    a = np.random.default_rng(seed)
    b = np.random.default_rng(seed)
    draws = [sampler.sample(a) for _ in range(2_000)]
    assert draws == [
        _historical_zipf(b, s, population) for _ in range(2_000)
    ]
    assert all(0 <= d < population for d in draws)


def test_sampler_is_seed_deterministic():
    sampler = ZipfSampler(1.2, 1_000_000)
    runs = []
    for _ in range(2):
        rng = np.random.default_rng(17)
        runs.append([sampler(rng) for _ in range(500)])
    assert runs[0] == runs[1]
    # The head dominates: rank 0 must be the modal draw under s=1.2.
    assert max(set(runs[0]), key=runs[0].count) == 0


def test_sampler_validates_parameters():
    with pytest.raises(ValueError):
        ZipfSampler(1.0, 100)  # numpy's zipf needs s > 1
    with pytest.raises(ValueError):
        ZipfSampler(1.2, 0)


def test_retwis_draws_through_the_shared_sampler():
    wl = RetwisWorkload(num_users=10)
    a = np.random.default_rng(3)
    b = np.random.default_rng(3)
    assert [wl._zipf_user(a) for _ in range(500)] == [
        _historical_zipf(b, wl.zipf_s, wl.num_users) for _ in range(500)
    ]


# ----------------------------------------------------------------------
# SkewedWorkload
# ----------------------------------------------------------------------

def test_skewed_requests_are_seed_deterministic():
    def trace(seed):
        wl = SkewedWorkload(num_users=100_000, ops_per_request=4)
        rng = np.random.default_rng(seed)
        return [wl.next_request(rng).input["ops"] for _ in range(200)]

    assert trace(5) == trace(5)
    assert trace(5) != trace(6)


def test_skewed_requests_write_before_read():
    wl = SkewedWorkload(num_users=1_000, ops_per_request=3)
    req = wl.next_request(np.random.default_rng(0))
    assert req.func_name == "skew.touch"
    ops = req.input["ops"]
    assert len(ops) == 3
    for key, value in ops:
        assert key.startswith("suser")
        assert value.startswith("v")
    reads, writes = wl.read_write_profile()
    assert (reads, writes) == (3.0, 3.0)


def test_million_user_population_stays_lazy():
    wl = SkewedWorkload(num_users=1_000_000, ops_per_request=4)
    rng = np.random.default_rng(11)
    for _ in range(1_000):
        wl.next_request(rng)
    # 4000 Zipf draws at s=1.2 land overwhelmingly on the head: the key
    # memo must stay orders of magnitude below the population.
    assert 0 < wl.distinct_users_touched < 10_000


def test_skewed_workload_validates_parameters():
    with pytest.raises(ValueError):
        SkewedWorkload(num_users=0)
    with pytest.raises(ValueError):
        SkewedWorkload(ops_per_request=0)


# ----------------------------------------------------------------------
# DiurnalCurve
# ----------------------------------------------------------------------

def test_diurnal_curve_shape():
    curve = DiurnalCurve(1_000.0, peak_factor=2.0, trough_factor=0.4)
    assert curve.rate_at(0.0) == pytest.approx(400.0)
    assert curve.rate_at(curve.period_ms / 2) == pytest.approx(2_000.0)
    assert curve.rate_at(curve.period_ms) == pytest.approx(400.0)
    rates = curve.sample_rates(8)
    assert len(rates) == 8
    assert max(rates) <= 2_000.0 and min(rates) >= 400.0
    assert rates == curve.sample_rates(8)  # pure function of the curve


def test_diurnal_curve_validation():
    with pytest.raises(ValueError):
        DiurnalCurve(0.0)
    with pytest.raises(ValueError):
        DiurnalCurve(100.0, peak_factor=0.5, trough_factor=0.8)
    with pytest.raises(ValueError):
        DiurnalCurve(100.0).sample_rates(0)
