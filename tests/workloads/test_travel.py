"""Unit tests for the travel-reservation workload."""

import numpy as np
import pytest

from repro.workloads import TravelReservationWorkload
from repro.workloads.travel import availability_key, user_key
from tests.conftest import make_runtime


@pytest.fixture
def setup(protocol_name):
    runtime = make_runtime(protocol_name)
    wl = TravelReservationWorkload(
        num_hotels=8, num_users=10, num_regions=2
    )
    wl.register(runtime)
    wl.populate(runtime)
    return runtime, wl


def test_ten_ssfs_registered(setup):
    runtime, _ = setup
    assert len(runtime.functions.names()) == 10


def test_search_returns_ranked_hotels(setup):
    runtime, _ = setup
    result = runtime.invoke("travel.search", {"region": 0})
    assert len(result.output) == 3
    assert all(h.startswith("hotel") for h in result.output)


def test_reservation_decrements_availability(setup):
    runtime, wl = setup
    out = runtime.invoke("travel.frontend", {
        "region": 0, "user": 1, "reserve": True, "resv_seq": 1,
    })
    assert out.output["status"] == "reserved"
    # Exactly one room was taken from the chosen hotel; read through the
    # protocol so the multi-version schema is resolved correctly.
    probe = runtime.open_session().init()
    availabilities = [
        probe.read(availability_key(i)) for i in range(8)
    ]
    probe.finish()
    assert sorted(availabilities)[0] == 49
    assert sum(1 for a in availabilities if a == 49) == 1


def test_reservation_records_order_and_trip(setup):
    runtime, _ = setup
    runtime.invoke("travel.frontend", {
        "region": 0, "user": 3, "reserve": True, "resv_seq": 9,
    })
    probe = runtime.open_session().init()
    assert probe.read(user_key(3))["trips"] == 1
    assert probe.read("resv003.000009")["user"] == 3
    probe.finish()


def test_search_only_request_writes_nothing(setup):
    runtime, _ = setup
    writes_before = runtime.backend.kv.write_count
    runtime.invoke("travel.frontend", {
        "region": 1, "user": 2, "reserve": False, "resv_seq": 2,
    })
    assert runtime.backend.kv.write_count == writes_before


def test_request_stream_well_formed():
    wl = TravelReservationWorkload(num_hotels=8, num_users=10,
                                   num_regions=2)
    rng = np.random.default_rng(3)
    seqs = set()
    for _ in range(20):
        req = wl.next_request(rng)
        assert req.func_name == "travel.frontend"
        assert 0 <= req.input["region"] < 2
        assert 0 <= req.input["user"] < 10
        seqs.add(req.input["resv_seq"])
    assert len(seqs) == 20  # unique reservation sequence numbers


def test_profile_is_read_intensive():
    wl = TravelReservationWorkload()
    assert wl.read_ratio() > 0.75
