"""Unit tests for the Retwis workload."""

import numpy as np
import pytest

from repro.workloads import RetwisWorkload
from repro.workloads.retwis import (
    followers_key,
    following_key,
    posts_key,
    timeline_key,
)
from tests.conftest import make_runtime


@pytest.fixture
def setup(protocol_name):
    runtime = make_runtime(protocol_name)
    wl = RetwisWorkload(num_users=10)
    wl.register(runtime)
    wl.populate(runtime)
    return runtime, wl


def test_post_appears_in_timeline_and_posts(setup):
    runtime, _ = setup
    out = runtime.invoke("retwis.post", {"user": 3, "text": "hi"})
    tweet_id = out.output
    probe = runtime.open_session().init()
    assert tweet_id in probe.read(timeline_key())
    assert tweet_id in probe.read(posts_key(3))
    assert probe.read(f"rtweet{tweet_id:07d}")["author"] == 3
    probe.finish()


def test_timeline_hydrates_recent_tweets(setup):
    runtime, _ = setup
    for i in range(3):
        runtime.invoke("retwis.post", {"user": i, "text": f"t{i}"})
    out = runtime.invoke("retwis.timeline", {"user": 0})
    assert [t["text"] for t in out.output] == ["t0", "t1", "t2"]


def test_profile_returns_recent_posts(setup):
    runtime, _ = setup
    runtime.invoke("retwis.post", {"user": 5, "text": "mine"})
    out = runtime.invoke("retwis.profile", {"user": 5})
    assert out.output["user"]["handle"] == "@user0005"
    assert [t["text"] for t in out.output["recent"]] == ["mine"]


def test_follow_creates_both_edges(setup):
    runtime, _ = setup
    runtime.invoke("retwis.follow", {"follower": 1, "followee": 2})
    probe = runtime.open_session().init()
    assert 2 in probe.read(following_key(1))
    assert 1 in probe.read(followers_key(2))
    probe.finish()


def test_follow_is_set_like(setup):
    runtime, _ = setup
    for _ in range(2):
        runtime.invoke("retwis.follow", {"follower": 1, "followee": 2})
    probe = runtime.open_session().init()
    assert probe.read(following_key(1)) == [2]
    probe.finish()


def test_timeline_capped(setup):
    runtime, _ = setup
    for i in range(12):
        runtime.invoke("retwis.post", {"user": 0, "text": f"t{i}"})
    out = runtime.invoke("retwis.timeline", {"user": 0})
    assert len(out.output) == 8  # TIMELINE_FANOUT


def test_request_mix_and_zipf():
    wl = RetwisWorkload(num_users=10)
    rng = np.random.default_rng(2)
    names = [wl.next_request(rng).func_name for _ in range(500)]
    assert names.count("retwis.timeline") > names.count("retwis.post")
    assert set(names) <= {
        "retwis.post", "retwis.timeline", "retwis.profile",
        "retwis.follow",
    }


def test_follow_never_self():
    wl = RetwisWorkload(num_users=3)
    rng = np.random.default_rng(4)
    for _ in range(300):
        req = wl.next_request(rng)
        if req.func_name == "retwis.follow":
            assert req.input["follower"] != req.input["followee"]


def test_fractions_must_sum_to_at_most_one():
    with pytest.raises(ValueError):
        RetwisWorkload(post_fraction=0.5, timeline_fraction=0.4,
                       profile_fraction=0.3)


def test_profile_is_read_intensive():
    assert RetwisWorkload().read_ratio() > 0.7
