"""Unit tests for the synthetic workloads."""

import numpy as np
import pytest

from repro.workloads import MixedRatioWorkload, ReadWriteMicrobench
from tests.conftest import make_runtime


@pytest.fixture
def rng():
    return np.random.default_rng(7)


class TestReadWriteMicrobench:
    def test_populates_configured_keys(self, rng):
        runtime = make_runtime("boki")
        wl = ReadWriteMicrobench(num_keys=50)
        wl.register(runtime)
        wl.populate(runtime)
        assert runtime.backend.kv.get(wl.key(0)) is not None
        assert runtime.backend.kv.get(wl.key(49)) is not None

    def test_requests_target_known_keys(self, rng):
        wl = ReadWriteMicrobench(num_keys=10)
        for _ in range(50):
            req = wl.next_request(rng)
            assert req.func_name == "rw"
            assert req.input["read_key"].startswith("obj")
            assert req.input["write_key"].startswith("obj")

    def test_runs_end_to_end(self, rng, protocol_name):
        runtime = make_runtime(protocol_name)
        wl = ReadWriteMicrobench(num_keys=10)
        wl.register(runtime)
        wl.populate(runtime)
        req = wl.next_request(rng)
        result = runtime.invoke(req.func_name, req.input)
        assert result.output is not None

    def test_profile(self):
        assert ReadWriteMicrobench().read_write_profile() == (1.0, 1.0)
        assert ReadWriteMicrobench().read_ratio() == 0.5


class TestMixedRatioWorkload:
    def test_rejects_bad_ratio(self):
        with pytest.raises(ValueError):
            MixedRatioWorkload(read_ratio=1.5)

    def test_ops_per_request(self, rng):
        wl = MixedRatioWorkload(0.5, num_keys=10, ops_per_request=10)
        req = wl.next_request(rng)
        assert len(req.input["ops"]) == 10

    def test_read_fraction_tracks_ratio(self, rng):
        wl = MixedRatioWorkload(0.7, num_keys=100)
        reads = total = 0
        for _ in range(200):
            for kind, _key, _value in wl.next_request(rng).input["ops"]:
                reads += kind == "r"
                total += 1
        assert reads / total == pytest.approx(0.7, abs=0.05)

    def test_extreme_ratios(self, rng):
        all_reads = MixedRatioWorkload(1.0, num_keys=10)
        assert all(
            k == "r"
            for k, _, _ in all_reads.next_request(rng).input["ops"]
        )
        all_writes = MixedRatioWorkload(0.0, num_keys=10)
        assert all(
            k == "w"
            for k, _, _ in all_writes.next_request(rng).input["ops"]
        )

    def test_runs_end_to_end(self, rng, protocol_name):
        runtime = make_runtime(protocol_name)
        wl = MixedRatioWorkload(0.5, num_keys=20)
        wl.register(runtime)
        wl.populate(runtime)
        for _ in range(5):
            req = wl.next_request(rng)
            runtime.invoke(req.func_name, req.input)

    def test_profile_scales_with_ratio(self):
        wl = MixedRatioWorkload(0.3, ops_per_request=10)
        reads, writes = wl.read_write_profile()
        assert reads == pytest.approx(3.0)
        assert writes == pytest.approx(7.0)
