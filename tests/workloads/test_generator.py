"""Unit tests for load generation."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.workloads import Phase, PhasedSchedule, PoissonArrivals


@pytest.fixture
def rng():
    return np.random.default_rng(11)


class TestPoissonArrivals:
    def test_rate_must_be_positive(self):
        with pytest.raises(ConfigError):
            PoissonArrivals(0.0)

    def test_mean_gap_matches_rate(self, rng):
        arrivals = PoissonArrivals(rate_per_s=200.0)
        gaps = [arrivals.inter_arrival_ms(rng) for _ in range(20_000)]
        assert np.mean(gaps) == pytest.approx(5.0, rel=0.05)

    def test_schedule_count_matches_rate(self, rng):
        arrivals = PoissonArrivals(rate_per_s=100.0)
        times = arrivals.schedule(10_000.0, rng)
        assert len(times) == pytest.approx(1000, rel=0.15)
        assert times == sorted(times)
        assert all(0 <= t < 10_000.0 for t in times)


class TestPhasedSchedule:
    def test_requires_phases(self):
        with pytest.raises(ConfigError):
            PhasedSchedule([])

    def test_phase_lookup(self):
        schedule = PhasedSchedule([
            Phase(5_000.0, 0.2, "halfmoon-write"),
            Phase(5_000.0, 0.8, "halfmoon-read"),
        ])
        assert schedule.total_duration_ms() == 10_000.0
        index, phase = schedule.phase_at(1_000.0)
        assert index == 0 and phase.read_ratio == 0.2
        index, phase = schedule.phase_at(7_500.0)
        assert index == 1 and phase.read_ratio == 0.8
        # Clamped past the end.
        index, _ = schedule.phase_at(99_999.0)
        assert index == 1

    def test_boundaries(self):
        schedule = PhasedSchedule([
            Phase(3_000.0, 0.2), Phase(2_000.0, 0.8), Phase(1_000.0, 0.5),
        ])
        assert schedule.boundaries_ms() == [0.0, 3_000.0, 5_000.0]
