"""Shared helpers for the benchmark suite.

Every benchmark regenerates one of the paper's tables or figures through
the harness, times it via pytest-benchmark (single round — these are
experiments, not microbenchmarks), asserts the paper's *shape*, and saves
the rendered table under ``benchmarks/results/`` so the numbers are
inspectable after a run.

Scale: the default parameters are sized to finish the whole suite in a
few minutes.  Set ``REPRO_BENCH_SCALE=full`` for longer, closer-to-paper
runs.
"""

from __future__ import annotations

import pathlib

import pytest

from bench_utils import RESULTS_DIR, write_results


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def save_table(results_dir):
    def _save(name: str, *tables) -> None:
        text = "\n\n".join(t.render() for t in tables)
        write_results(name, txt=text)
        print(f"\n{text}")

    return _save
