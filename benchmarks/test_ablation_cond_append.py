"""Ablation A1: logCondAppend vs Boki-style append-then-filter.

Section 5.1 motivates ``logCondAppend``: resolving peer-instance races
in place, in one log round trip, instead of appending unconditionally
and then reading back the caller's stream to honor only the first record
of each step.  This ablation implements the append-then-filter scheme
against the same substrate and compares

* log operations consumed per contended step, and
* residual (dead) records left in the log.
"""

import pytest

from repro import SystemConfig
from repro.errors import ConditionalAppendError
from repro.harness.report import ExperimentTable
from repro.sharedlog import SharedLog

from bench_utils import run_once, scaled

STEPS = scaled(300, 2_000)
PEERS = 3


def race_with_cond_append(steps=STEPS, peers=PEERS):
    """Peers race each step through logCondAppend."""
    log = SharedLog()
    appends = reads = 0
    for step in range(steps):
        for peer in range(peers):
            appends += 1
            try:
                log.cond_append(
                    ["i"], {"step": step, "peer": peer}, "i", step
                )
            except ConditionalAppendError:
                # Losers adopt the winner's record: one targeted read.
                reads += 1
    return {
        "appends": appends,
        "reads": reads,
        "live_records": log.live_record_count,
        "log_ops": appends + reads,
    }


def race_with_append_then_filter(steps=STEPS, peers=PEERS):
    """Every peer appends; everyone re-reads the stream to find the
    first record per step (Boki's separate conflict resolution)."""
    log = SharedLog()
    appends = reads = 0
    for step in range(steps):
        for peer in range(peers):
            appends += 1
            log.append(["i"], {"step": step, "peer": peer})
            # Read back to learn the winning record for this step.
            reads += 1
            records = [
                r for r in log.read_stream("i") if r["step"] == step
            ]
            _winner = records[0]
    return {
        "appends": appends,
        "reads": reads,
        "live_records": log.live_record_count,
        "log_ops": appends + reads,
    }


@pytest.fixture(scope="module")
def results():
    return {
        "logCondAppend": race_with_cond_append(),
        "append-then-filter": race_with_append_then_filter(),
    }


def test_ablation_table(benchmark, save_table, results):
    run_once(benchmark, lambda: race_with_cond_append(steps=100))
    table = ExperimentTable(
        "Ablation A1: peer-race conflict resolution "
        f"({STEPS} steps, {PEERS} peers)",
        ["scheme", "appends", "reads", "live records", "total log ops"],
    )
    for scheme, r in results.items():
        table.add_row(
            scheme, r["appends"], r["reads"], r["live_records"],
            r["log_ops"],
        )
    table.add_note(
        "logCondAppend leaves one record per step and resolves races in "
        "place; append-then-filter leaves one record per peer per step"
    )
    save_table("ablation_cond_append", table)


def test_cond_append_leaves_no_dead_records(results):
    assert results["logCondAppend"]["live_records"] == STEPS
    assert results["append-then-filter"]["live_records"] == STEPS * PEERS


def test_cond_append_uses_fewer_log_ops(results):
    assert results["logCondAppend"]["log_ops"] < (
        results["append-then-filter"]["log_ops"]
    )


def test_storage_amplification_factor(results):
    amplification = (
        results["append-then-filter"]["live_records"]
        / results["logCondAppend"]["live_records"]
    )
    assert amplification == pytest.approx(PEERS)
