"""Ablation A2: advisor predictions vs measured crossovers, and the
write-logging alignment knob.

Two questions:

1. Does the Section 4.6 analytical criterion actually predict the
   empirical crossover measured by the Figure 13 harness?
2. How much does the prototype's "log twice per write" alignment
   (Section 4.1) cost Halfmoon-read, compared with the deterministic-
   version single-log variant?
"""

import pytest

from repro import ProtocolConfig, SystemConfig
from repro.analysis import ProtocolAdvisor, runtime_boundary_read_ratio
from repro.config import ClusterConfig
from repro.harness import crossover_ratio, run_fig13, run_overhead_point
from repro.harness.report import ExperimentTable

from bench_utils import run_once, scaled

RATIOS = (0.1, 0.3, 0.5, 0.7, 0.9)
CONFIG = SystemConfig(
    seed=47, cluster=ClusterConfig(function_nodes=4, workers_per_node=8)
)
DURATION = scaled(5_000.0, 15_000.0)
KEYS = scaled(600, 5_000)


@pytest.fixture(scope="module")
def measured_crossover():
    tables = run_fig13(
        rates=(150.0,), read_ratios=RATIOS, config=CONFIG,
        duration_ms=DURATION, num_keys=KEYS,
    )
    return crossover_ratio(tables[150.0], "median (ms)", RATIOS)


def test_advisor_table(benchmark, save_table, measured_crossover):
    run_once(benchmark, lambda: runtime_boundary_read_ratio(2.0))
    predicted = runtime_boundary_read_ratio(2.0)
    table = ExperimentTable(
        "Ablation A2: advisor boundary vs measurement",
        ["quantity", "read ratio"],
    )
    table.add_row("analytical boundary (C_w = 2 C_r)", predicted)
    table.add_row("measured crossover (Fig. 13 harness)",
                  measured_crossover)
    table.add_note("paper: measured slightly above 2/3")
    save_table("ablation_advisor", table)


def test_prediction_matches_measurement(measured_crossover):
    predicted = runtime_boundary_read_ratio(2.0)
    assert measured_crossover == pytest.approx(predicted, abs=0.12)


def test_advisor_recommends_correct_side_of_measured_boundary(
    measured_crossover,
):
    from repro.analysis import WorkloadProfile

    advisor = ProtocolAdvisor()
    below = max(0.05, measured_crossover - 0.2)
    above = min(0.95, measured_crossover + 0.2)
    rec_below = advisor.recommend(
        WorkloadProfile(below, 1 - below, 100.0)
    )
    rec_above = advisor.recommend(
        WorkloadProfile(above, 1 - above, 100.0)
    )
    assert rec_below.protocol == "halfmoon-write"
    assert rec_above.protocol == "halfmoon-read"


class TestWriteLoggingAlignment:
    """Design-choice 3 from DESIGN.md: double vs single write logging."""

    @pytest.fixture(scope="class")
    def latencies(self):
        aligned = run_overhead_point(
            "halfmoon-read", 0.3, CONFIG, rate_per_s=100.0,
            duration_ms=DURATION, num_keys=KEYS,
        )
        single_config = SystemConfig(
            seed=47,
            cluster=ClusterConfig(function_nodes=4, workers_per_node=8),
            protocol=ProtocolConfig(align_write_logging_with_boki=False),
        )
        deterministic = run_overhead_point(
            "halfmoon-read", 0.3, single_config, rate_per_s=100.0,
            duration_ms=DURATION, num_keys=KEYS,
        )
        return aligned, deterministic

    def test_single_log_variant_is_faster(self, latencies, save_table):
        aligned, deterministic = latencies
        table = ExperimentTable(
            "Ablation A2b: Halfmoon-read write logging "
            "(read ratio 0.3, 100 req/s)",
            ["variant", "median (ms)", "log appends"],
        )
        table.add_row(
            "two logs per write (Boki-aligned)", aligned.median_ms,
            sum(aligned.counters.get(k, 0) for k in
                ("log_append", "log_append_overlapped",
                 "log_append_control")),
        )
        table.add_row(
            "deterministic version, one log", deterministic.median_ms,
            sum(deterministic.counters.get(k, 0) for k in
                ("log_append", "log_append_overlapped",
                 "log_append_control")),
        )
        save_table("ablation_write_logging", table)
        assert deterministic.median_ms < aligned.median_ms

    def test_single_log_variant_appends_less(self, latencies):
        aligned, deterministic = latencies
        aligned_appends = aligned.counters.get("log_append", 0) + (
            aligned.counters.get("log_append_overlapped", 0)
        )
        deterministic_appends = (
            deterministic.counters.get("log_append", 0)
            + deterministic.counters.get("log_append_overlapped", 0)
        )
        # Roughly one fewer append per write; the workload is 70% writes.
        assert deterministic_appends < aligned_appends
