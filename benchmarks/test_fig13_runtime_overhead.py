"""Figure 13: median latency vs read ratio at several request rates.

Asserts the Section 4.6 runtime criterion empirically:

* Halfmoon-read's latency falls with the read ratio, Boki's falls more
  slowly, and the HM-read/HM-write crossover sits near read ratio 2/3
  (slightly above, because C_w exceeds 2 C_r in practice);
* the crossover is insensitive to the request rate;
* both protocols undercut Boki at every ratio, by roughly 1.2-1.5x.
"""

import pytest

from repro import SystemConfig
from repro.config import ClusterConfig
from repro.harness import crossover_ratio, run_fig13

from bench_utils import run_once, scaled

RATIOS = (0.1, 0.3, 0.5, 0.7, 0.9)
RATES = scaled((150.0, 350.0), (100.0, 200.0, 300.0, 400.0))
CONFIG = SystemConfig(
    seed=43, cluster=ClusterConfig(function_nodes=8, workers_per_node=8)
)
DURATION = scaled(6_000.0, 15_000.0)
KEYS = scaled(1_000, 10_000)


@pytest.fixture(scope="module")
def tables():
    return run_fig13(
        rates=RATES, read_ratios=RATIOS, config=CONFIG,
        duration_ms=DURATION, num_keys=KEYS,
    )


def test_fig13_tables(benchmark, save_table, tables):
    run_once(
        benchmark,
        lambda: run_fig13(
            rates=(RATES[0],), read_ratios=(0.5,), config=CONFIG,
            duration_ms=3_000.0, num_keys=KEYS,
        ),
    )
    save_table("fig13_runtime_overhead", *tables.values())


@pytest.mark.parametrize("rate", RATES)
def test_crossover_near_two_thirds(tables, rate):
    crossing = crossover_ratio(tables[rate], "median (ms)", RATIOS)
    assert 0.55 <= crossing <= 0.85, f"rate {rate}: {crossing}"


def test_crossover_insensitive_to_rate(tables):
    crossings = [
        crossover_ratio(tables[rate], "median (ms)", RATIOS)
        for rate in RATES
    ]
    assert max(crossings) - min(crossings) <= 0.15


@pytest.mark.parametrize("rate", RATES)
def test_hm_read_improves_with_read_ratio(tables, rate):
    medians = [
        tables[rate].lookup(
            {"system": "halfmoon-read", "read ratio": r}, "median (ms)"
        ) for r in RATIOS
    ]
    assert medians[0] > medians[-1]


@pytest.mark.parametrize("rate", RATES)
def test_both_protocols_beat_boki(tables, rate):
    table = tables[rate]
    for ratio in RATIOS:
        boki = table.lookup(
            {"system": "boki", "read ratio": ratio}, "median (ms)"
        )
        for system in ("halfmoon-read", "halfmoon-write"):
            value = table.lookup(
                {"system": system, "read ratio": ratio}, "median (ms)"
            )
            assert value < boki


def test_improvement_factor_in_band(tables):
    """The better protocol improves on Boki by ~1.1-1.6x (paper:
    1.2-1.5x)."""
    table = tables[RATES[0]]
    for ratio in (0.1, 0.9):
        boki = table.lookup(
            {"system": "boki", "read ratio": ratio}, "median (ms)"
        )
        best = min(
            table.lookup(
                {"system": s, "read ratio": ratio}, "median (ms)"
            )
            for s in ("halfmoon-read", "halfmoon-write")
        )
        assert 1.1 <= boki / best <= 1.7
