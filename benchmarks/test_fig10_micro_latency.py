"""Figure 10: per-operation read/write latency of the four systems.

Setup from Section 6.1: a synthetic SSF issuing one read and one write
per request against 10K pre-populated objects (8 B keys, 256 B values).
Checks the headline claims:

* Halfmoon-read serves exactly-once reads ~25-35% below Boki, within a
  small factor of unsafe raw reads;
* Halfmoon-write serves exactly-once writes ~25-45% below Boki;
* each protocol matches Boki on its logged side.
"""

import pytest

from repro.harness import run_fig10

from bench_utils import run_once, scaled


@pytest.fixture(scope="module")
def tables():
    return run_fig10(
        requests=scaled(1_500, 10_000),
        num_keys=scaled(2_000, 10_000),
    )


def median(tables, op, system):
    return tables[op].lookup({"system": system}, "median (ms)")


def test_fig10_tables(benchmark, save_table):
    result = run_once(
        benchmark,
        lambda: run_fig10(
            requests=scaled(1_500, 10_000),
            num_keys=scaled(2_000, 10_000),
        ),
    )
    save_table("fig10_micro_latency", result["read"], result["write"])


def test_read_panel_shape(tables):
    unsafe = median(tables, "read", "unsafe")
    boki = median(tables, "read", "boki")
    hm_read = median(tables, "read", "halfmoon-read")
    hm_write = median(tables, "read", "halfmoon-write")
    assert 0.60 <= hm_read / boki <= 0.85, "HM-read should undercut Boki"
    assert hm_write == pytest.approx(boki, rel=0.08)
    assert 1.0 <= hm_read / unsafe <= 1.35, "near-raw exactly-once reads"


def test_write_panel_shape(tables):
    unsafe = median(tables, "write", "unsafe")
    boki = median(tables, "write", "boki")
    hm_read = median(tables, "write", "halfmoon-read")
    hm_write = median(tables, "write", "halfmoon-write")
    assert 0.50 <= hm_write / boki <= 0.75
    assert hm_read == pytest.approx(boki, rel=0.10)
    assert hm_write > unsafe  # conditional updates stay above raw


def test_logging_overhead_reduction(tables):
    """Overhead above the unsafe baseline: HM-read cuts Boki's read-side
    overhead by >2x; HM-write cuts the write side by >2x (paper: 1.5-4x
    end to end, 2-6x per op)."""
    for op, system in [("read", "halfmoon-read"),
                       ("write", "halfmoon-write")]:
        unsafe = median(tables, op, "unsafe")
        boki = median(tables, op, "boki")
        halfmoon = median(tables, op, system)
        reduction = (boki - unsafe) / max(halfmoon - unsafe, 1e-9)
        assert reduction > 2.0, f"{op}: only {reduction:.1f}x"
