"""Helpers importable by benchmark modules (pytest adds this directory to
``sys.path`` because the benchmarks are not a package)."""

from __future__ import annotations

import os

FULL_SCALE = os.environ.get("REPRO_BENCH_SCALE", "").lower() == "full"


def scaled(default, full):
    """Pick a parameter based on the requested benchmark scale."""
    return full if FULL_SCALE else default


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
