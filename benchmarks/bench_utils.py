"""Helpers importable by benchmark modules (pytest adds this directory to
``sys.path`` because the benchmarks are not a package)."""

from __future__ import annotations

import json
import os
import pathlib

FULL_SCALE = os.environ.get("REPRO_BENCH_SCALE", "").lower() == "full"

#: Every benchmark artifact (rendered tables, raw-number JSON) lands here.
RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def scaled(default, full):
    """Pick a parameter based on the requested benchmark scale."""
    return full if FULL_SCALE else default


def write_results(name, txt=None, json_payload=None):
    """Write a benchmark's artifacts under ``benchmarks/results/``.

    The single writer behind every results file: ``txt`` becomes
    ``results/<name>.txt`` (newline-terminated), ``json_payload``
    becomes ``results/<name>.json`` (indent=2, sorted nothing — key
    order is the caller's).  Returns the paths written.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    written = []
    if txt is not None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(txt if txt.endswith("\n") else txt + "\n")
        written.append(path)
    if json_payload is not None:
        if isinstance(json_payload, dict) and "sim_kernel" not in json_payload:
            # Every artifact records which DES kernel produced it; the
            # two kernels are bit-identical on results but not on speed.
            from repro.simulation import active_kernel

            json_payload = {"sim_kernel": active_kernel(), **json_payload}
        path = RESULTS_DIR / f"{name}.json"
        path.write_text(json.dumps(json_payload, indent=2) + "\n")
        written.append(path)
    return written


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
