"""Figure 11: end-to-end latency vs throughput for the three applications.

Sweeps offered load for travel reservation (read-intensive, 10 SSFs),
movie review (write-leaning, 13 SSFs), and Retwis (read-intensive
PUT/GET mix) under all four systems, asserting the paper's shape:

* the correctly chosen Halfmoon protocol beats Boki at every load point;
* Halfmoon-read wins travel and Retwis, Halfmoon-write wins movie;
* both Halfmoon variants beat Boki even when mis-chosen;
* achieved throughput tracks offered load below saturation for everyone.
"""

import pytest

from repro.harness import run_fig11

from bench_utils import run_once, scaled

RATES = {
    "travel-reservation": scaled((150, 450, 750), (100, 300, 500, 700, 900)),
    "movie-review": scaled((75, 225, 375), (50, 150, 250, 350, 450)),
    "retwis": scaled((150, 450, 750), (100, 300, 500, 700, 900)),
}
DURATION_MS = scaled(4_000.0, 10_000.0)

EXPECTED_WINNER = {
    "travel-reservation": "halfmoon-read",
    "movie-review": "halfmoon-write",
    "retwis": "halfmoon-read",
}


@pytest.fixture(scope="module")
def tables():
    return run_fig11(rates=RATES, duration_ms=DURATION_MS,
                     warmup_ms=1_000.0)


def test_fig11_tables(benchmark, save_table, tables):
    # The heavy sweep already ran in the fixture; time a single cheap
    # cell so the benchmark table still reports something meaningful.
    from repro.harness import run_app_point

    run_once(
        benchmark,
        lambda: run_app_point(
            "retwis", "halfmoon-read", RATES["retwis"][0],
            duration_ms=2_000.0, warmup_ms=500.0,
        ),
    )
    save_table("fig11_applications", *tables.values())


@pytest.mark.parametrize("app", sorted(EXPECTED_WINNER))
def test_correct_protocol_beats_boki_everywhere(tables, app):
    table = tables[app]
    winner = EXPECTED_WINNER[app]
    for rate in RATES[app]:
        boki = table.lookup(
            {"system": "boki", "offered (req/s)": rate}, "median (ms)"
        )
        best = table.lookup(
            {"system": winner, "offered (req/s)": rate}, "median (ms)"
        )
        assert best < boki, f"{app} @ {rate}: {best} !< {boki}"


@pytest.mark.parametrize("app", sorted(EXPECTED_WINNER))
def test_right_halfmoon_variant_wins(tables, app):
    table = tables[app]
    rate = RATES[app][1]
    read_m = table.lookup(
        {"system": "halfmoon-read", "offered (req/s)": rate},
        "median (ms)",
    )
    write_m = table.lookup(
        {"system": "halfmoon-write", "offered (req/s)": rate},
        "median (ms)",
    )
    if EXPECTED_WINNER[app] == "halfmoon-read":
        assert read_m < write_m
    else:
        assert write_m < read_m


@pytest.mark.parametrize("app", sorted(EXPECTED_WINNER))
def test_wrong_protocol_still_at_or_below_boki(tables, app):
    """Boki either logs more reads than HM-read or more writes than
    HM-write, so Halfmoon never does worse (Section 6.2)."""
    table = tables[app]
    for rate in RATES[app]:
        boki = table.lookup(
            {"system": "boki", "offered (req/s)": rate}, "median (ms)"
        )
        for system in ("halfmoon-read", "halfmoon-write"):
            value = table.lookup(
                {"system": system, "offered (req/s)": rate},
                "median (ms)",
            )
            assert value <= boki * 1.03, f"{app}/{system} @ {rate}"


@pytest.mark.parametrize("app", sorted(EXPECTED_WINNER))
def test_throughput_tracks_offered_below_saturation(tables, app):
    table = tables[app]
    rate = RATES[app][0]  # well below saturation
    for system in ("boki", "halfmoon-read", "halfmoon-write", "unsafe"):
        achieved = table.lookup(
            {"system": system, "offered (req/s)": rate},
            "achieved (req/s)",
        )
        assert achieved == pytest.approx(rate, rel=0.2)


def test_unsafe_is_the_floor(tables):
    for app, table in tables.items():
        for rate in RATES[app]:
            unsafe = table.lookup(
                {"system": "unsafe", "offered (req/s)": rate},
                "median (ms)",
            )
            for system in ("boki", "halfmoon-read", "halfmoon-write"):
                assert table.lookup(
                    {"system": system, "offered (req/s)": rate},
                    "median (ms)",
                ) > unsafe
