"""Chaos resilience: crashes × infrastructure faults, exactly-once audit.

Sweeps the per-operation infrastructure fault rate (transient errors,
timeouts, gray failure) composed with Bernoulli instance crashes for all
four systems, auditing every key against its ground-truth increment
count.  The logged protocols must report zero exactly-once violations
at every fault rate up to 10%; the unsafe baseline is the control that
demonstrably violates.  A second table ablates the circuit breaker's
degraded-read fallback under a log-scoped brown-out.
"""

import pytest

from repro.harness import run_brownout_comparison, run_chaos_sweep
from repro.harness.chaos import EXACTLY_ONCE_SYSTEMS

from bench_utils import run_once, scaled

SEED = 42
FAULT_RATES = (0.0, 0.02, 0.05, 0.1)
REQUESTS = scaled(150, 600)


@pytest.fixture(scope="module")
def chaos_table():
    return run_chaos_sweep(
        fault_rates=FAULT_RATES, requests=REQUESTS, seed=SEED
    )


@pytest.fixture(scope="module")
def brownout_table():
    return run_brownout_comparison(
        requests=scaled(250, 1_000), seed=SEED
    )


def test_chaos_tables(benchmark, save_table, chaos_table, brownout_table):
    run_once(
        benchmark,
        lambda: run_chaos_sweep(
            fault_rates=(0.05,), systems=("boki",), requests=40,
            seed=SEED,
        ),
    )
    save_table("chaos_resilience", chaos_table, brownout_table)


def test_logged_protocols_zero_violations(chaos_table):
    for system in EXACTLY_ONCE_SYSTEMS:
        for rate in FAULT_RATES:
            violations = chaos_table.lookup(
                {"system": system, "fault rate": rate}, "violations"
            )
            assert violations == 0, (system, rate)


def test_unsafe_baseline_violates(chaos_table):
    violations = [
        chaos_table.lookup(
            {"system": "unsafe", "fault rate": rate}, "violations"
        )
        for rate in FAULT_RATES
    ]
    assert any(v > 0 for v in violations)


def test_faults_amplify_tail_latency(chaos_table):
    """Retry/backoff under faults is visible in the tail: p99 at a 10%
    fault rate strictly exceeds the failure-free p99."""
    for system in EXACTLY_ONCE_SYSTEMS:
        amp = chaos_table.lookup(
            {"system": system, "fault rate": 0.1}, "p99 amp"
        )
        assert amp > 1.0, system


def test_retries_grow_with_fault_rate(chaos_table):
    for system in EXACTLY_ONCE_SYSTEMS:
        none = chaos_table.lookup(
            {"system": system, "fault rate": 0.0}, "retries"
        )
        heavy = chaos_table.lookup(
            {"system": system, "fault rate": 0.1}, "retries"
        )
        assert none == 0
        assert heavy > 0


def test_goodput_degrades_gracefully(chaos_table):
    """Faults cost throughput but never availability: goodput at a 10%
    fault rate stays within 2x of failure-free."""
    for system in EXACTLY_ONCE_SYSTEMS:
        clean = chaos_table.lookup(
            {"system": system, "fault rate": 0.0}, "goodput (req/s)"
        )
        faulted = chaos_table.lookup(
            {"system": system, "fault rate": 0.1}, "goodput (req/s)"
        )
        assert faulted > 0.5 * clean, system


def test_degraded_fallback_improves_brownout_p99(brownout_table):
    on_p99 = brownout_table.lookup(
        {"fallback": "on"}, "request p99 (ms)"
    )
    off_p99 = brownout_table.lookup(
        {"fallback": "off"}, "request p99 (ms)"
    )
    assert on_p99 < off_p99
    assert brownout_table.lookup({"fallback": "on"}, "degraded reads") > 0
    assert brownout_table.lookup({"fallback": "off"},
                                 "degraded reads") == 0
