"""Table 1: latency of log, read, and write primitives.

Regenerates the paper's Table 1 (median / p99 of a shared-log append, a
raw store read, and a raw store write) from the calibrated latency
models, and checks both the absolute calibration and the ordering.
"""

import pytest

from repro.harness import run_table1

from bench_utils import run_once, scaled


def test_table1(benchmark, save_table):
    samples = scaled(5_000, 50_000)
    table = run_once(benchmark, lambda: run_table1(samples=samples))
    save_table("table1_op_latency", table)

    log_m = table.lookup({"metric": "median"}, "Log (ms)")
    read_m = table.lookup({"metric": "median"}, "Read (ms)")
    write_m = table.lookup({"metric": "median"}, "Write (ms)")
    # Calibration targets from the paper.
    assert log_m == pytest.approx(1.18, rel=0.1)
    assert read_m == pytest.approx(1.88, rel=0.1)
    assert write_m == pytest.approx(2.47, rel=0.1)
    assert log_m < read_m < write_m
