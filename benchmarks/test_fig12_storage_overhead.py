"""Figure 12: time-averaged storage overhead vs read ratio.

Four panels (object size x GC interval), three systems each.  Asserts:

* Halfmoon-read's footprint falls as the read ratio rises (fewer
  versions); Halfmoon-write's rises (read-log records);
* the crossover sits slightly above read ratio 0.5 and is insensitive to
  the GC interval;
* Boki stores more than the better Halfmoon protocol at the extremes;
* Halfmoon-read exceeds Boki under write-heavy mixes (multi-versioning
  outweighs the scarce read log), as the paper observes.
"""

import pytest

from repro import SystemConfig
from repro.config import ClusterConfig
from repro.harness import crossover_ratio, run_fig12

from bench_utils import run_once, scaled

RATIOS = (0.1, 0.3, 0.5, 0.7, 0.9)
CONFIG = SystemConfig(
    seed=41, cluster=ClusterConfig(function_nodes=4, workers_per_node=8)
)
RATE = scaled(50.0, 100.0)
DURATION = scaled(20_000.0, 120_000.0)
KEYS = scaled(400, 2_000)

PANELS = [
    (256, 10_000.0),
    (256, 30_000.0),
    (1024, 10_000.0),
    (1024, 30_000.0),
]


@pytest.fixture(scope="module")
def panels():
    return {
        (size, gc): run_fig12(
            value_bytes=size, gc_interval_ms=gc, read_ratios=RATIOS,
            config=CONFIG, rate_per_s=RATE, duration_ms=DURATION,
            num_keys=KEYS,
        )
        for size, gc in PANELS
    }


def test_fig12_tables(benchmark, save_table, panels):
    run_once(
        benchmark,
        lambda: run_fig12(
            value_bytes=256, gc_interval_ms=10_000.0,
            read_ratios=(0.5,), config=CONFIG, rate_per_s=RATE,
            duration_ms=5_000.0, num_keys=KEYS,
        ),
    )
    save_table("fig12_storage_overhead", *panels.values())


@pytest.mark.parametrize("size,gc", PANELS)
def test_monotone_trends(panels, size, gc):
    table = panels[(size, gc)]
    hm_read = [
        table.lookup(
            {"system": "halfmoon-read", "read ratio": r},
            "avg total (KB)",
        ) for r in RATIOS
    ]
    hm_write = [
        table.lookup(
            {"system": "halfmoon-write", "read ratio": r},
            "avg total (KB)",
        ) for r in RATIOS
    ]
    assert hm_read[0] > hm_read[-1], "HM-read should shrink with reads"
    assert hm_write[0] < hm_write[-1], "HM-write should grow with reads"


@pytest.mark.parametrize("size,gc", PANELS)
def test_crossover_slightly_above_half(panels, size, gc):
    crossing = crossover_ratio(
        panels[(size, gc)], "avg total (KB)", RATIOS
    )
    assert 0.45 <= crossing <= 0.70, f"panel {size}B/GC{gc}: {crossing}"


def test_crossover_insensitive_to_gc_interval(panels):
    for size in (256, 1024):
        short = crossover_ratio(
            panels[(size, 10_000.0)], "avg total (KB)", RATIOS
        )
        long = crossover_ratio(
            panels[(size, 30_000.0)], "avg total (KB)", RATIOS
        )
        assert short == pytest.approx(long, abs=0.15)


@pytest.mark.parametrize("size,gc", PANELS)
def test_boki_above_best_protocol(panels, size, gc):
    table = panels[(size, gc)]
    for ratio in (0.1, 0.9):
        boki = table.lookup(
            {"system": "boki", "read ratio": ratio}, "avg total (KB)"
        )
        best = min(
            table.lookup(
                {"system": s, "read ratio": ratio}, "avg total (KB)"
            )
            for s in ("halfmoon-read", "halfmoon-write")
        )
        assert boki > best


def test_halfmoon_read_worse_than_boki_when_write_heavy(panels):
    """Paper: at low read ratios the versioning overhead of HM-read
    exceeds Boki's (read logs are scarce there)."""
    table = panels[(256, 10_000.0)]
    hm_read = table.lookup(
        {"system": "halfmoon-read", "read ratio": 0.1}, "avg total (KB)"
    )
    boki = table.lookup(
        {"system": "boki", "read ratio": 0.1}, "avg total (KB)"
    )
    assert hm_read > boki
