"""Sequencer scaling benchmark: the ISSUE 9 acceptance gate in CI form.

Runs the three sequencing strategies at a low and a saturating offered
rate under the Zipf-skewed 10⁵-user workload and asserts the shape the
pluggable sequencer exists for:

* the **monolith** saturates — occupancy approaches 1.0 at the high
  rate and its p99 explodes past the latency SLO;
* **batched** and **leased-ranges** each sustain **>= 2x** the
  monolith's appends/s *within* the SLO (the "2x at equal p99" gate);
* low-load results agree across strategies (the refactor adds no
  per-operation cost where the sequencer isn't the bottleneck);
* everything is seed-deterministic.

Raw numbers land in ``results/BENCH_scale.json`` (plus the rendered
table as ``results/BENCH_scale.txt``) so commits can be diffed.
"""

import pytest

from repro import SystemConfig
from repro.harness import run_scale_point
from repro.harness.report import ExperimentTable

from bench_utils import run_once, scaled, write_results

SEQUENCERS = ("monolith", "batched", "leased-ranges")
LOW_RATE = 300.0
SAT_RATE = 1_200.0
#: The latency SLO for the "equal p99" comparison: a strategy's
#: sustained append rate only counts at rates where it still meets this.
P99_SLO_MS = 250.0
GATE_SPEEDUP = 2.0
DURATION = scaled(2_000.0, 5_000.0)
WARMUP = scaled(300.0, 800.0)
USERS = scaled(100_000, 1_000_000)
CONFIG = SystemConfig(seed=23)


@pytest.fixture(scope="module")
def points():
    """One RunResult per (sequencer, rate) cell."""
    return {
        (seq, rate): run_scale_point(
            seq, rate, num_users=USERS, config=CONFIG,
            duration_ms=DURATION, warmup_ms=WARMUP,
        )
        for seq in SEQUENCERS
        for rate in (LOW_RATE, SAT_RATE)
    }


def _sustained(points, seq):
    """Best appends/s over the cells where the strategy meets the SLO."""
    rates = [
        result.extras["appends_per_s"]
        for (s, _), result in points.items()
        if s == seq and result.p99_ms <= P99_SLO_MS
    ]
    return max(rates) if rates else 0.0


def test_scale_table_and_json(benchmark, save_table, points):
    run_once(
        benchmark,
        lambda: run_scale_point(
            "monolith", LOW_RATE, num_users=USERS, config=CONFIG,
            duration_ms=1_000.0, warmup_ms=200.0,
        ),
    )
    table = ExperimentTable(
        f"Sequencer scaling gate: {USERS:,} Zipf users, "
        f"SLO p99 <= {P99_SLO_MS:.0f}ms",
        ["sequencer", "rate (req/s)", "completed", "p50 (ms)",
         "p99 (ms)", "appends/s", "seq occupancy"],
    )
    for (seq, rate), result in points.items():
        table.add_row(
            seq, rate, result.completed, result.median_ms,
            result.p99_ms, result.extras["appends_per_s"],
            result.extras["sequencer"]["occupancy"],
        )
    save_table("BENCH_scale", table)
    mono = _sustained(points, "monolith")
    payload = {
        "seed": CONFIG.seed,
        "num_users": USERS,
        "rates": {"low": LOW_RATE, "saturating": SAT_RATE},
        "duration_ms": DURATION,
        "p99_slo_ms": P99_SLO_MS,
        "points": [
            {
                "sequencer": seq,
                "rate_per_s": rate,
                "completed": result.completed,
                "p50_ms": result.median_ms,
                "p99_ms": result.p99_ms,
                "appends_per_s": result.extras["appends_per_s"],
                "occupancy": result.extras["sequencer"]["occupancy"],
                "distinct_users": result.extras["distinct_users"],
            }
            for (seq, rate), result in sorted(points.items())
        ],
        "gate": {
            "min_speedup": GATE_SPEEDUP,
            "monolith_sustained_appends_per_s": mono,
            "speedup": {
                seq: (_sustained(points, seq) / mono if mono else 0.0)
                for seq in SEQUENCERS
                if seq != "monolith"
            },
        },
    }
    write_results("BENCH_scale", json_payload=payload)


def test_monolith_saturates_at_high_rate(points):
    sat = points[("monolith", SAT_RATE)]
    low = points[("monolith", LOW_RATE)]
    assert sat.extras["sequencer"]["occupancy"] >= 0.85
    assert sat.p99_ms > P99_SLO_MS  # past the knee the SLO is gone
    assert sat.p99_ms > low.p99_ms * 10


@pytest.mark.parametrize("seq", ["batched", "leased-ranges"])
def test_amortizing_sequencers_sustain_2x_within_slo(points, seq):
    mono = _sustained(points, "monolith")
    assert mono > 0  # monolith meets the SLO somewhere (the low rate)
    assert _sustained(points, seq) >= GATE_SPEEDUP * mono
    # And the wins come from amortization, not from dropping work:
    sat = points[(seq, SAT_RATE)]
    assert sat.p99_ms <= P99_SLO_MS
    assert sat.extras["sequencer"]["occupancy"] < 0.5


def test_low_load_parity_across_strategies(points):
    completed = [points[(s, LOW_RATE)].completed for s in SEQUENCERS]
    assert len(set(completed)) == 1  # identical arrivals, all served
    p99s = [points[(s, LOW_RATE)].p99_ms for s in SEQUENCERS]
    assert max(p99s) <= min(p99s) * 1.5


def test_scale_point_is_seed_deterministic(points):
    again = run_scale_point(
        "batched", SAT_RATE, num_users=USERS, config=CONFIG,
        duration_ms=DURATION, warmup_ms=WARMUP,
    )
    baseline = points[("batched", SAT_RATE)]
    assert again.p99_ms == baseline.p99_ms
    assert again.completed == baseline.completed
    assert (again.extras["appends_per_s"]
            == baseline.extras["appends_per_s"])
