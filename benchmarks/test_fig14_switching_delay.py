"""Figure 14: pauseless protocol-switching delay.

Two-phase workload (read ratio 0.2 under Halfmoon-write, then 0.8 under
Halfmoon-read, alternating every 5 s).  Asserts:

* switching completes well under a second at both loads;
* requests keep completing *during* the switch (pauseless);
* at high load, draining the write-heavy phase (HM-write -> HM-read)
  takes longer than the reverse, and longer than at moderate load.
"""

import pytest

from repro.harness import run_fig14, run_fig14_point
from repro.harness.report import ExperimentTable

from bench_utils import run_once, scaled

MODERATE = 300.0
HEAVY = 600.0
KEYS = scaled(1_000, 10_000)


@pytest.fixture(scope="module")
def results():
    return {
        rate: run_fig14_point(rate, num_keys=KEYS)
        for rate in (MODERATE, HEAVY)
    }


def test_fig14_table(benchmark, save_table, results):
    run_once(benchmark, lambda: run_fig14_point(MODERATE, num_keys=200))
    table = ExperimentTable(
        "Figure 14: protocol switching delay",
        ["rate (req/s)", "direction", "delay (ms)"],
    )
    for rate, result in results.items():
        for entry in result.switch_delays:
            table.add_row(
                rate, f"{entry['from']} -> {entry['to']}",
                entry["delay_ms"],
            )
    table.add_note(
        "paper @300: 92/70 ms; @600: 575/88 ms (saturation ~800 req/s)"
    )
    save_table("fig14_switching_delay", table)


def test_switches_happened(results):
    for rate, result in results.items():
        assert len(result.switch_delays) >= 3, f"rate {rate}"
        assert all(d is not None for d in result.delays_ms())


def test_switching_is_subsecond(results):
    for rate, result in results.items():
        assert max(result.delays_ms()) < 1_000.0


def test_asymmetry_under_load(results):
    heavy = results[HEAVY]
    to_read = heavy.delay_for("halfmoon-read")     # drains write phase
    to_write = heavy.delay_for("halfmoon-write")   # drains read phase
    assert max(to_read) > max(to_write)


def test_load_slows_switching(results):
    assert max(results[HEAVY].delays_ms()) > (
        max(results[MODERATE].delays_ms())
    )


def test_pauseless_requests_complete_throughout(results):
    """No service gap around a switch: completions continue in every
    100 ms window covering the switch boundaries."""
    result = results[MODERATE]
    for entry in result.switch_delays:
        begin = entry["begin_time_ms"]
        window = result.latency_series.window(begin - 100.0,
                                              begin + 200.0)
        assert window, f"no completions around switch at {begin}"
