"""Storage-plane scaling benchmark: p50/p99 at fixed load for N log
shards, N ∈ {1, 2, 4, 8}.

Asserts the scaling shape the sharded plane exists for:

* at the saturating rate, p99 strictly improves from 1 to 4 shards
  (per-shard utilisation falls as placement spreads the append load);
* at the low rate, medians agree across shard counts to within noise —
  sharding adds placement, not per-operation cost;
* results are seed-deterministic.

Alongside the rendered table, the run saves ``results/shard_sweep.json``
with the raw p50/p99 per shard count so downstream tooling can diff
scaling numbers across commits.
"""

import pytest

from repro import SystemConfig
from repro.harness import run_shard_point, run_shard_sweep

from bench_utils import run_once, scaled, write_results

SHARD_COUNTS = (1, 2, 4, 8)
HIGH_RATE = 600.0
LOW_RATE = 100.0
DURATION = scaled(4_000.0, 10_000.0)
WARMUP = scaled(800.0, 2_000.0)
KEYS = scaled(1_000, 4_000)
CONFIG = SystemConfig(seed=91)


@pytest.fixture(scope="module")
def points():
    """One RunResult per (shards, rate) cell."""
    return {
        (shards, rate): run_shard_point(
            shards, rate, config=CONFIG, duration_ms=DURATION,
            warmup_ms=WARMUP, num_keys=KEYS,
        )
        for shards in SHARD_COUNTS
        for rate in (LOW_RATE, HIGH_RATE)
    }


def test_shard_sweep_table_and_json(benchmark, save_table, points):
    run_once(
        benchmark,
        lambda: run_shard_point(
            1, LOW_RATE, config=CONFIG, duration_ms=1_500.0,
            warmup_ms=300.0, num_keys=KEYS,
        ),
    )
    table = run_shard_sweep(
        shard_counts=SHARD_COUNTS, rates=(LOW_RATE, HIGH_RATE),
        config=CONFIG, duration_ms=DURATION, warmup_ms=WARMUP,
        num_keys=KEYS,
    )
    save_table("shard_sweep", table)
    payload = {
        "seed": CONFIG.seed,
        "rates": {"low": LOW_RATE, "high": HIGH_RATE},
        "duration_ms": DURATION,
        "points": [
            {
                "log_shards": shards,
                "rate_per_s": rate,
                "p50_ms": result.median_ms,
                "p99_ms": result.p99_ms,
                "completed": result.completed,
                "log_wait_ms_total": result.extras["log_wait_ms_total"],
                "store_wait_ms_total": result.extras[
                    "store_wait_ms_total"
                ],
            }
            for (shards, rate), result in sorted(points.items())
        ],
    }
    write_results("shard_sweep", json_payload=payload)


def test_p99_strictly_improves_one_to_four_shards(points):
    p99 = {s: points[(s, HIGH_RATE)].p99_ms for s in SHARD_COUNTS}
    assert p99[2] < p99[1]
    assert p99[4] < p99[2]


def test_queueing_wait_falls_with_shards(points):
    waits = {
        s: points[(s, HIGH_RATE)].extras["log_wait_ms_total"]
        for s in SHARD_COUNTS
    }
    assert waits[4] < waits[1]
    assert waits[8] <= waits[4] * 1.5  # diminishing, never regressing far


def test_low_load_medians_within_noise(points):
    medians = [points[(s, LOW_RATE)].median_ms for s in SHARD_COUNTS]
    assert max(medians) <= min(medians) * 1.10


def test_sweep_is_seed_deterministic(points):
    again = run_shard_point(
        4, HIGH_RATE, config=CONFIG, duration_ms=DURATION,
        warmup_ms=WARMUP, num_keys=KEYS,
    )
    assert again.p99_ms == points[(4, HIGH_RATE)].p99_ms
    assert again.completed == points[(4, HIGH_RATE)].completed
