"""Substrate microbenchmarks (classic pytest-benchmark usage).

Times the hot paths of the building blocks: shared-log appends and
sub-stream reads, conditional KV updates, the DES event loop, and a full
direct-mode invocation per protocol.  These track the reproduction's own
performance rather than a figure from the paper.
"""

import pytest

from repro import LocalRuntime, SystemConfig
from repro.sharedlog import SharedLog
from repro.simulation import Simulator
from repro.store import KVStore


def test_log_append_throughput(benchmark):
    log = SharedLog()
    counter = {"i": 0}

    def append():
        counter["i"] += 1
        log.append(["i", f"k{counter['i'] % 64}"], {"step": counter["i"]})

    benchmark(append)


def test_log_read_prev_throughput(benchmark):
    log = SharedLog()
    for i in range(10_000):
        log.append([f"k{i % 64}"], {"i": i})
    benchmark(lambda: log.read_prev("k7", 9_000))


def test_kv_conditional_put_throughput(benchmark):
    kv = KVStore()
    counter = {"v": 0}

    def put():
        counter["v"] += 1
        kv.conditional_put("hot", counter["v"], (counter["v"], 1))

    benchmark(put)


def test_simulator_event_throughput(benchmark):
    def run_events():
        sim = Simulator()

        def ticker():
            for _ in range(1_000):
                yield sim.timeout(1.0)

        sim.process(ticker())
        sim.run()

    benchmark(run_events)


@pytest.mark.parametrize(
    "protocol", ["unsafe", "boki", "halfmoon-read", "halfmoon-write"]
)
def test_invocation_throughput(benchmark, protocol):
    runtime = LocalRuntime(SystemConfig(seed=3), protocol=protocol)
    runtime.populate("X", 0)

    def bump(ctx, inp):
        ctx.write("X", ctx.read("X") + 1)

    runtime.register("bump", bump)
    benchmark(lambda: runtime.invoke("bump"))
