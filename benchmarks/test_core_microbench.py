"""Substrate microbenchmarks (classic pytest-benchmark usage).

Times the hot paths of the building blocks: shared-log appends and
sub-stream reads, conditional KV updates, the DES event loop, and a full
direct-mode invocation per protocol.  These track the reproduction's own
performance rather than a figure from the paper.
"""

import numpy as np
import pytest

from repro import LocalRuntime, SystemConfig
from repro.sharedlog import SharedLog
from repro.simulation import NormalDrawBatch, Simulator
from repro.simulation.latency import LogNormalLatency
from repro.store import KVStore


def test_log_append_throughput(benchmark):
    log = SharedLog()
    counter = {"i": 0}

    def append():
        counter["i"] += 1
        log.append(["i", f"k{counter['i'] % 64}"], {"step": counter["i"]})

    benchmark(append)


def test_log_read_prev_throughput(benchmark):
    log = SharedLog()
    for i in range(10_000):
        log.append([f"k{i % 64}"], {"i": i})
    benchmark(lambda: log.read_prev("k7", 9_000))


def test_kv_conditional_put_throughput(benchmark):
    kv = KVStore()
    counter = {"v": 0}

    def put():
        counter["v"] += 1
        kv.conditional_put("hot", counter["v"], (counter["v"], 1))

    benchmark(put)


def test_simulator_event_throughput(benchmark):
    def run_events():
        sim = Simulator()

        def ticker():
            for _ in range(1_000):
                yield sim.timeout(1.0)

        sim.process(ticker())
        sim.run()

    benchmark(run_events)


def test_simulator_bare_delay_throughput(benchmark):
    # The bare-delay fast path (`yield 1.0`): no Timeout object, no
    # callback list — the headline number for the kernel comparison
    # (run with REPRO_SIM_KERNEL=pure / =compiled to A/B).
    def run_events():
        sim = Simulator()

        def ticker():
            for _ in range(1_000):
                yield 1.0

        sim.process(ticker())
        sim.run()

    benchmark(run_events)


def test_heap_drain_same_instant_batch(benchmark):
    # Worst-case same-instant batching: hundreds of processes colliding
    # on every timestamp, so each run() iteration drains a wide batch.
    def run_events():
        sim = Simulator()

        def ticker():
            for _ in range(20):
                yield 1.0

        for _ in range(200):
            sim.process(ticker())
        sim.run()

    benchmark(run_events)


def test_sampler_batched_lognormal(benchmark):
    model = LogNormalLatency(2.0, 9.0)
    batch = NormalDrawBatch(np.random.default_rng(7))
    sampler = model.batched_sampler(batch)

    def draw_many():
        for _ in range(1_000):
            sampler()

    benchmark(draw_many)


def test_sampler_scalar_lognormal(benchmark):
    # The baseline the batched sampler replaces (bit-identical values,
    # one numpy scalar call per draw).
    model = LogNormalLatency(2.0, 9.0)
    rng = np.random.default_rng(7)

    def draw_many():
        for _ in range(1_000):
            model.sample(rng)

    benchmark(draw_many)


@pytest.mark.parametrize(
    "protocol", ["unsafe", "boki", "halfmoon-read", "halfmoon-write"]
)
def test_invocation_throughput(benchmark, protocol):
    runtime = LocalRuntime(SystemConfig(seed=3), protocol=protocol)
    runtime.populate("X", 0)

    def bump(ctx, inp):
        ctx.write("X", ctx.read("X") + 1)

    runtime.register("bump", bump)
    benchmark(lambda: runtime.invoke("bump"))
