"""Wall-clock + CPU-time perf regression suite.

Times the canonical cells the kernel fast-path work optimised — the
Figure 10 direct-mode cell, a 4-shard DES cell, a chaos cell, and a
DES-only "kernel" microcell — and normalises each against a busy-loop
calibration so the numbers compare across machines.  Artifacts land in
``results/BENCH_sweep.json``: wall seconds, CPU seconds, DES events/s,
sweep cells/s, parallel speedup vs serial, and the speedup over the
pre-PR kernel (the committed ``perf_baseline.json`` carries both
reference points).

Gating uses **CPU time** (``time.process_time``), not wall clock: on a
shared box wall-clock ratios swing 2x with co-tenant load, while CPU
ratios only drift with frequency scaling — which the calibration
divide cancels.  Wall seconds are still recorded (they are what a
user experiences), and the parallel-sweep speedup is necessarily
wall-based (fan-out buys latency, not CPU).

Calibration is **paired**: each timed round is bracketed by a busy-loop
run immediately before and after, and the round's ratio divides the
cell's CPU time by the mean of its two brackets.  A single up-front
calibration is order-biased on throttled hosts (cgroup CPU-burst credit
makes whatever runs first in a process ~2x faster than steady state,
swinging ratios 3x depending on measurement order); adjacent brackets
see the same frequency state as the cell they normalise.  A warm-up
run at fixture start burns the burst credit so every timed round is
steady-state, and the per-cell ratio is the **median** across rounds
(robust to a burst-decay straddle or a preemption spike in any one
round).

Gates (regression + speedup apply per cell; see the tests):

* regression: a cell's paired-calibration CPU ratio must stay within
  ``max_regression`` (30%) of the committed baseline — enforced only
  under ``REPRO_PERF_STRICT=1`` (the CI perf-smoke / compiled-smoke
  jobs), because dev machines are noisy.  The committed references are
  pure-kernel ceilings, so the compiled kernel passes with headroom.
* shard speedup: the 4-shard DES cell must beat the pre-PR reference
  — modestly, because the kernel is only ~10-15% of that cell's CPU
  (domain code dominates; see DESIGN.md "Performance").
* kernel speedup: the DES-only microcell must beat the pre-PR
  reference by ``min_speedup.kernel_compiled`` (3x) when the compiled
  kernel is active — this is where the extension's win is measured
  without domain-code dilution (observed ~6x).
* parallel speedup: the 4-cell shard sweep at ``jobs=4`` must beat
  serial by 2.5x wall-clock — gated on ``os.cpu_count() >= 4`` (the
  assertion is meaningless on fewer cores; the measurement is still
  recorded).
"""

import json
import os
import pathlib
import statistics
import time

import pytest

from repro import SystemConfig
from repro.harness import (
    SweepCell,
    run_cells,
    run_chaos_point,
    run_shard_point,
)

#: Cells at storage replication > 1 are measured for visibility but
#: never CPU-gated: R-way replication mirrors every append and trim to
#: R copies *by design* — it is a durability knob, not a kernel perf
#: path, and gating it would turn the fault-tolerance tax into a fake
#: regression.  The committed baseline only carries replication=1
#: references.
GATED_REPLICATION = 1
from repro.harness.micro import measure_op_latencies
from repro.simulation import Simulator, active_kernel

from bench_utils import write_results

BASELINE = json.loads(
    (pathlib.Path(__file__).parent / "perf_baseline.json").read_text()
)
STRICT = os.environ.get("REPRO_PERF_STRICT", "") == "1"
CPUS = os.cpu_count() or 1

SHARD_CONFIG = SystemConfig(seed=91)
CHAOS_CONFIG = SystemConfig(seed=42)


def _busy_loop() -> float:
    """One fixed busy-loop run; its CPU seconds measure machine speed
    *right now* (paired brackets, not best-of-N up front)."""
    iterations = BASELINE["calibration"]["busy_loop_iterations"]
    t0 = time.process_time()
    acc = 0
    for i in range(iterations):
        acc += i * i
    return time.process_time() - t0


def _paired_rounds(fn, rounds=3):
    """Measure ``fn`` with bracketed calibration.

    Returns ``(ratio, cpu_min, wall_min, calib_median, last_result)``
    where ``ratio`` is the median over rounds of
    ``cpu / mean(bracket_before, bracket_after)``.
    """
    ratios, cpus, walls, calibs, result = [], [], [], [], None
    for _ in range(rounds):
        before = _busy_loop()
        c0 = time.process_time()
        w0 = time.perf_counter()
        result = fn()
        cpu = time.process_time() - c0
        wall = time.perf_counter() - w0
        after = _busy_loop()
        calib = (before + after) / 2.0
        ratios.append(cpu / calib)
        cpus.append(cpu)
        walls.append(wall)
        calibs.append(calib)
    return (statistics.median(ratios), min(cpus), min(walls),
            statistics.median(calibs), result)


def _shard_cell():
    return run_shard_point(
        4, 600.0, config=SHARD_CONFIG, duration_ms=3_000.0,
        warmup_ms=500.0, num_keys=1_000,
    )


def _kernel_cell():
    """DES-only microcell: 320k timeout events across 400 processes,
    no domain code — the undiluted kernel comparison.  Timeouts (not
    bare delays) so the same cell runs on the pre-PR kernel."""
    sim = Simulator()

    def ticker(n, delay):
        for _ in range(n):
            yield sim.timeout(delay)

    for i in range(400):
        sim.process(ticker(800, 1.0 + (i % 7) * 0.5))
    sim.run()
    return sim.events_processed


def _sweep_cells():
    return [
        SweepCell(
            key=("bench", shards, rate),
            fn=run_shard_point,
            kwargs=dict(
                shards=shards, rate_per_s=rate, config=SHARD_CONFIG,
                duration_ms=1_500.0, warmup_ms=300.0, num_keys=500,
            ),
        )
        for shards in (1, 4)
        for rate in (150.0, 600.0)
    ]


def _cell_payload(measured, pre_ratio):
    ratio, cpu_s, wall_s, calib_s, _ = measured
    return {
        "wall_s": wall_s,
        "cpu_s": cpu_s,
        "calib_s": calib_s,
        "ratio": ratio,
        "speedup_vs_pre_pr": pre_ratio / ratio,
    }


@pytest.fixture(scope="module")
def bench():
    """Measure everything once; every test asserts against this dict."""
    pre = BASELINE["pre_pr"]

    # Burn-in: drain any cgroup CPU-burst credit (and warm imports)
    # so the paired rounds below all run at steady-state frequency.
    _shard_cell()
    _busy_loop()

    # Short cells get more rounds — they are the noisiest.
    fig10 = _paired_rounds(
        lambda: measure_op_latencies("boki", requests=1_500,
                                     num_keys=2_000),
        rounds=5,
    )
    shard = _paired_rounds(_shard_cell, rounds=3)
    kernel = _paired_rounds(_kernel_cell, rounds=3)
    shard_r3 = _paired_rounds(
        lambda: run_shard_point(
            4, 600.0, duration_ms=3_000.0, warmup_ms=500.0,
            num_keys=1_000,
            config=SHARD_CONFIG.with_storage_plane(replication=3),
        ),
        rounds=2,
    )
    chaos = _paired_rounds(
        lambda: run_chaos_point("boki", 0.05, config=CHAOS_CONFIG,
                                requests=800, num_keys=500),
        rounds=5,
    )

    cells = _sweep_cells()
    serial_t0 = time.perf_counter()
    run_cells(cells, jobs=1)
    serial_s = time.perf_counter() - serial_t0
    parallel_jobs = min(4, CPUS)
    if parallel_jobs > 1:
        parallel_t0 = time.perf_counter()
        run_cells(cells, jobs=parallel_jobs)
        parallel_s = time.perf_counter() - parallel_t0
        speedup_vs_serial = serial_s / parallel_s
    else:
        parallel_s = None
        speedup_vs_serial = None

    shard_payload = _cell_payload(shard, pre["shard_ratio"])
    events = shard[4].extras["events_processed"]
    shard_payload["events_processed"] = events
    shard_payload["events_per_s"] = events / shard_payload["wall_s"]
    shard_payload["events_per_cpu_s"] = events / shard_payload["cpu_s"]

    kernel_payload = _cell_payload(kernel, pre["kernel_ratio"])
    kernel_events = kernel[4]
    kernel_payload["events_processed"] = kernel_events
    kernel_payload["events_per_s"] = (
        kernel_events / kernel_payload["wall_s"]
    )
    kernel_payload["events_per_cpu_s"] = (
        kernel_events / kernel_payload["cpu_s"]
    )

    payload = {
        "calibration": "paired-bracket-median",
        "cells": {
            "fig10": _cell_payload(fig10, pre["fig10_ratio"]),
            "shard": shard_payload,
            "kernel": kernel_payload,
            "chaos": _cell_payload(chaos, pre["chaos_ratio"]),
            # Same cell as "shard" at replication=3: the mirroring tax,
            # recorded but exempt from the CPU gates (GATED_REPLICATION).
            "shard_r3": {
                "wall_s": shard_r3[2],
                "cpu_s": shard_r3[1],
                "calib_s": shard_r3[3],
                "ratio": shard_r3[0],
                "replication": 3,
                "gated": False,
            },
        },
        "sweep": {
            "cells": len(cells),
            "serial_wall_s": serial_s,
            "cells_per_s": len(cells) / serial_s,
            "parallel_jobs": parallel_jobs,
            "parallel_wall_s": parallel_s,
            "speedup_vs_serial": speedup_vs_serial,
        },
    }
    write_results("BENCH_sweep", json_payload=payload)
    return payload


def test_bench_sweep_json_written(bench):
    path = pathlib.Path(__file__).parent / "results" / "BENCH_sweep.json"
    saved = json.loads(path.read_text())
    assert set(saved["cells"]) == {
        "fig10", "shard", "kernel", "chaos", "shard_r3"
    }
    assert saved["sim_kernel"] == active_kernel()
    assert saved["cells"]["shard"]["events_per_s"] > 0
    assert saved["cells"]["kernel"]["events_per_cpu_s"] > 0
    assert saved["sweep"]["cells_per_s"] > 0


def test_replicated_cells_are_exempt_from_gates(bench):
    """Replication>1 cells are measured but never CPU-gated, and the
    committed baseline carries no reference for them."""
    for name, cell in bench["cells"].items():
        if cell.get("replication", GATED_REPLICATION) > GATED_REPLICATION:
            assert cell.get("gated") is False, name
            assert f"{name}_ratio" not in BASELINE["baseline"], name
    r3 = bench["cells"]["shard_r3"]
    assert r3["replication"] == 3
    assert r3["ratio"] > 0


def test_des_events_per_s_improved_vs_pre_pr(bench):
    """The end-to-end criterion: the 4-shard DES cell beats the pre-PR
    reference.

    The floors are deliberately modest — the kernel is only ~10-15% of
    this cell's CPU, so even a 6x kernel cannot move it 3x (Amdahl);
    the undiluted kernel win is gated by
    :func:`test_kernel_cell_speedup_compiled`.  The pure kernel's
    end-to-end gain is within measurement noise, so its strict floor
    only guards against real loss (the regression gate is the primary
    pure-kernel guard).  Outside strict mode the gate is looser still,
    because single runs on dev machines are noisy.
    """
    speedup = bench["cells"]["shard"]["speedup_vs_pre_pr"]
    if not STRICT:
        floor = 0.8
    elif active_kernel() == "compiled":
        floor = BASELINE["min_speedup"]["shard_compiled"]
    else:
        floor = BASELINE["min_speedup"]["shard_pure"]
    assert speedup >= floor, (
        f"shard DES cell speedup vs pre-PR kernel {speedup:.2f}x "
        f"< {floor}x"
    )


def test_kernel_cell_speedup_compiled(bench):
    """The headline gate: >=3x events/s on the DES-only microcell with
    the compiled kernel vs the committed pre-PR reference (measured on
    the pre-PR tree with the same cell, paired calibration)."""
    if active_kernel() != "compiled":
        pytest.skip("kernel-cell 3x gate measures the compiled kernel")
    speedup = bench["cells"]["kernel"]["speedup_vs_pre_pr"]
    floor = (BASELINE["min_speedup"]["kernel_compiled"]
             if STRICT else 1.5)
    assert speedup >= floor, (
        f"kernel microcell speedup vs pre-PR {speedup:.2f}x < {floor}x"
    )


def test_no_regression_vs_committed_baseline(bench):
    if not STRICT:
        pytest.skip("regression gate runs under REPRO_PERF_STRICT=1")
    limit = 1.0 + BASELINE["max_regression"]
    for name, ref in (
        ("fig10", BASELINE["baseline"]["fig10_ratio"]),
        ("shard", BASELINE["baseline"]["shard_ratio"]),
        ("kernel", BASELINE["baseline"]["kernel_ratio"]),
        ("chaos", BASELINE["baseline"]["chaos_ratio"]),
    ):
        cell = bench["cells"][name]
        assert cell.get(
            "replication", GATED_REPLICATION
        ) == GATED_REPLICATION, (
            f"{name}: replication>1 cells are exempt from CPU gates"
        )
        ratio = cell["ratio"]
        assert ratio <= ref * limit, (
            f"{name} cell regressed: normalised CPU ratio {ratio:.3f} "
            f"> {ref} * {limit} (committed baseline + "
            f"{BASELINE['max_regression']:.0%})"
        )


@pytest.mark.skipif(
    CPUS < 4, reason="parallel speedup gate needs >= 4 cores"
)
def test_parallel_sweep_speedup(bench):
    speedup = bench["sweep"]["speedup_vs_serial"]
    assert speedup is not None and speedup >= 2.5, (
        f"4-cell sweep at jobs=4 only {speedup}x vs serial"
    )
