"""Wall-clock + CPU-time perf regression suite.

Times the canonical cells the kernel fast-path work optimised — the
Figure 10 direct-mode cell, a 4-shard DES cell, and a chaos cell —
and normalises each against a fixed busy-loop calibration so the
numbers compare across machines.  Artifacts land in
``results/BENCH_sweep.json``: wall seconds, CPU seconds, DES events/s,
sweep cells/s, parallel speedup vs serial, and the speedup over the
pre-PR kernel (the committed ``perf_baseline.json`` carries both
reference points).

Gating uses **CPU time** (``time.process_time``), not wall clock: on a
shared box wall-clock ratios swing 2x with co-tenant load, while CPU
ratios only drift with frequency scaling — which the calibration
divide cancels.  Wall seconds are still recorded (they are what a
user experiences), and the parallel-sweep speedup is necessarily
wall-based (fan-out buys latency, not CPU).

Two gates:

* regression: a cell's calibration-normalised CPU ratio must stay
  within ``max_regression`` (30%) of the committed baseline —
  enforced only under ``REPRO_PERF_STRICT=1`` (the CI perf-smoke
  job), because dev machines are noisy;
* parallel speedup: the 4-cell shard sweep at ``jobs=4`` must beat
  serial by 2.5x wall-clock — gated on ``os.cpu_count() >= 4`` (the
  assertion is meaningless on fewer cores; the measurement is still
  recorded).
"""

import json
import os
import pathlib
import time

import pytest

from repro import SystemConfig
from repro.harness import (
    SweepCell,
    run_cells,
    run_chaos_point,
    run_shard_point,
)

#: Cells at storage replication > 1 are measured for visibility but
#: never CPU-gated: R-way replication mirrors every append and trim to
#: R copies *by design* — it is a durability knob, not a kernel perf
#: path, and gating it would turn the fault-tolerance tax into a fake
#: regression.  The committed baseline only carries replication=1
#: references.
GATED_REPLICATION = 1
from repro.harness.micro import measure_op_latencies

from bench_utils import write_results

BASELINE = json.loads(
    (pathlib.Path(__file__).parent / "perf_baseline.json").read_text()
)
STRICT = os.environ.get("REPRO_PERF_STRICT", "") == "1"
CPUS = os.cpu_count() or 1

SHARD_CONFIG = SystemConfig(seed=91)
CHAOS_CONFIG = SystemConfig(seed=42)


def _calibrate() -> float:
    """Fixed busy-loop; best-of-N CPU seconds normalises machine speed."""
    spec = BASELINE["calibration"]
    best = float("inf")
    for _ in range(spec["rounds"]):
        t0 = time.process_time()
        acc = 0
        for i in range(spec["busy_loop_iterations"]):
            acc += i * i
        best = min(best, time.process_time() - t0)
    return best


def _best_of(fn, rounds=3):
    """Best-of-N (cpu_s, wall_s, last_result).

    The minimum is robust to preemption by other tenants; CPU and wall
    minima are tracked independently (the best-wall round may not be
    the best-CPU round under load).
    """
    best_cpu, best_wall, result = float("inf"), float("inf"), None
    for _ in range(rounds):
        c0 = time.process_time()
        w0 = time.perf_counter()
        result = fn()
        best_cpu = min(best_cpu, time.process_time() - c0)
        best_wall = min(best_wall, time.perf_counter() - w0)
    return best_cpu, best_wall, result


def _shard_cell():
    return run_shard_point(
        4, 600.0, config=SHARD_CONFIG, duration_ms=3_000.0,
        warmup_ms=500.0, num_keys=1_000,
    )


def _sweep_cells():
    return [
        SweepCell(
            key=("bench", shards, rate),
            fn=run_shard_point,
            kwargs=dict(
                shards=shards, rate_per_s=rate, config=SHARD_CONFIG,
                duration_ms=1_500.0, warmup_ms=300.0, num_keys=500,
            ),
        )
        for shards in (1, 4)
        for rate in (150.0, 600.0)
    ]


def _cell_payload(cpu_s, wall_s, calib, pre_ratio):
    ratio = cpu_s / calib
    return {
        "wall_s": wall_s,
        "cpu_s": cpu_s,
        "ratio": ratio,
        "speedup_vs_pre_pr": pre_ratio / ratio,
    }


@pytest.fixture(scope="module")
def bench():
    """Measure everything once; every test asserts against this dict."""
    calib = _calibrate()
    pre = BASELINE["pre_pr"]

    # Short cells get more rounds — they are the noisiest.
    fig10_cpu, fig10_wall, _ = _best_of(
        lambda: measure_op_latencies("boki", requests=1_500,
                                     num_keys=2_000),
        rounds=5,
    )
    shard_cpu, shard_wall, shard_result = _best_of(_shard_cell, rounds=3)
    shard_r3_cpu, shard_r3_wall, _ = _best_of(
        lambda: run_shard_point(
            4, 600.0, duration_ms=3_000.0, warmup_ms=500.0,
            num_keys=1_000,
            config=SHARD_CONFIG.with_storage_plane(replication=3),
        ),
        rounds=2,
    )
    chaos_cpu, chaos_wall, _ = _best_of(
        lambda: run_chaos_point("boki", 0.05, config=CHAOS_CONFIG,
                                requests=800, num_keys=500),
        rounds=7,
    )

    events = shard_result.extras["events_processed"]
    cells = _sweep_cells()
    serial_t0 = time.perf_counter()
    run_cells(cells, jobs=1)
    serial_s = time.perf_counter() - serial_t0
    parallel_jobs = min(4, CPUS)
    if parallel_jobs > 1:
        parallel_t0 = time.perf_counter()
        run_cells(cells, jobs=parallel_jobs)
        parallel_s = time.perf_counter() - parallel_t0
        speedup_vs_serial = serial_s / parallel_s
    else:
        parallel_s = None
        speedup_vs_serial = None

    shard = _cell_payload(shard_cpu, shard_wall, calib,
                          pre["shard_ratio"])
    shard["events_processed"] = events
    shard["events_per_s"] = events / shard_wall
    shard["events_per_cpu_s"] = events / shard_cpu

    payload = {
        "calib_cpu_s": calib,
        "cells": {
            "fig10": _cell_payload(fig10_cpu, fig10_wall, calib,
                                   pre["fig10_ratio"]),
            "shard": shard,
            "chaos": _cell_payload(chaos_cpu, chaos_wall, calib,
                                   pre["chaos_ratio"]),
            # Same cell as "shard" at replication=3: the mirroring tax,
            # recorded but exempt from the CPU gates (GATED_REPLICATION).
            "shard_r3": {
                "wall_s": shard_r3_wall,
                "cpu_s": shard_r3_cpu,
                "ratio": shard_r3_cpu / calib,
                "replication": 3,
                "gated": False,
            },
        },
        "sweep": {
            "cells": len(cells),
            "serial_wall_s": serial_s,
            "cells_per_s": len(cells) / serial_s,
            "parallel_jobs": parallel_jobs,
            "parallel_wall_s": parallel_s,
            "speedup_vs_serial": speedup_vs_serial,
        },
    }
    write_results("BENCH_sweep", json_payload=payload)
    return payload


def test_bench_sweep_json_written(bench):
    path = pathlib.Path(__file__).parent / "results" / "BENCH_sweep.json"
    saved = json.loads(path.read_text())
    assert set(saved["cells"]) == {"fig10", "shard", "chaos", "shard_r3"}
    assert saved["cells"]["shard"]["events_per_s"] > 0
    assert saved["sweep"]["cells_per_s"] > 0


def test_replicated_cells_are_exempt_from_gates(bench):
    """Replication>1 cells are measured but never CPU-gated, and the
    committed baseline carries no reference for them."""
    for name, cell in bench["cells"].items():
        if cell.get("replication", GATED_REPLICATION) > GATED_REPLICATION:
            assert cell.get("gated") is False, name
            assert f"{name}_ratio" not in BASELINE["baseline"], name
    r3 = bench["cells"]["shard_r3"]
    assert r3["replication"] == 3
    assert r3["ratio"] > 0


def test_des_events_per_s_improved_vs_pre_pr(bench):
    """The DES kernel criterion: >=1.3x events/s vs the pre-PR kernel.

    Ratios are calibration-normalised CPU time, so the pre-PR
    reference (same cell, same seed, captured before the kernel
    fast-path work via interleaved A/B runs) holds across machines.
    Outside strict mode the gate only guards against having *lost*
    the win entirely, because single runs are noisy.
    """
    speedup = bench["cells"]["shard"]["speedup_vs_pre_pr"]
    floor = BASELINE["min_speedup"]["shard"] if STRICT else 1.0
    assert speedup >= floor, (
        f"shard DES cell speedup vs pre-PR kernel {speedup:.2f}x "
        f"< {floor}x"
    )


def test_no_regression_vs_committed_baseline(bench):
    if not STRICT:
        pytest.skip("regression gate runs under REPRO_PERF_STRICT=1")
    limit = 1.0 + BASELINE["max_regression"]
    for name, ref in (
        ("fig10", BASELINE["baseline"]["fig10_ratio"]),
        ("shard", BASELINE["baseline"]["shard_ratio"]),
        ("chaos", BASELINE["baseline"]["chaos_ratio"]),
    ):
        cell = bench["cells"][name]
        assert cell.get(
            "replication", GATED_REPLICATION
        ) == GATED_REPLICATION, (
            f"{name}: replication>1 cells are exempt from CPU gates"
        )
        ratio = cell["ratio"]
        assert ratio <= ref * limit, (
            f"{name} cell regressed: normalised CPU ratio {ratio:.3f} "
            f"> {ref} * {limit} (committed baseline + "
            f"{BASELINE['max_regression']:.0%})"
        )


@pytest.mark.skipif(
    CPUS < 4, reason="parallel speedup gate needs >= 4 cores"
)
def test_parallel_sweep_speedup(bench):
    speedup = bench["sweep"]["speedup_vs_serial"]
    assert speedup is not None and speedup >= 2.5, (
        f"4-cell sweep at jobs=4 only {speedup}x vs serial"
    )
