"""Section 7: recovery cost under Bernoulli failures.

Sweeps the per-round crash probability f and compares Halfmoon against
Boki, validating the analytical model's claims:

* Halfmoon stays below Boki across realistic failure rates (f << x);
* the analytical break-even point equals the failure-free advantage x;
* the measured gap narrows as f grows (Halfmoon replays log-free ops).
"""

import pytest

from repro.analysis import (
    break_even_failure_rate,
    expected_cost_halfmoon,
    expected_cost_symmetric,
    halfmoon_wins,
)
from repro.harness import run_recovery_sweep

from bench_utils import run_once, scaled

F_VALUES = (0.0, 0.1, 0.2, 0.3, 0.4)
REQUESTS = scaled(250, 1_000)


@pytest.fixture(scope="module")
def table():
    return run_recovery_sweep(
        f_values=F_VALUES, read_ratio=0.4,
        systems=("boki", "halfmoon-write", "halfmoon-read"),
        requests=REQUESTS,
    )


def test_recovery_table(benchmark, save_table, table):
    run_once(
        benchmark,
        lambda: run_recovery_sweep(
            f_values=(0.0,), systems=("boki",), requests=50
        ),
    )
    save_table("recovery_cost", table)


def test_halfmoon_wins_at_realistic_failure_rates(table):
    for f in (0.0, 0.1, 0.2):
        boki = table.lookup({"system": "boki", "f": f}, "mean (ms)")
        halfmoon = table.lookup(
            {"system": "halfmoon-write", "f": f}, "mean (ms)"
        )
        assert halfmoon < boki, f"f={f}"


def test_gap_narrows_with_failure_rate(table):
    def gap(f):
        boki = table.lookup({"system": "boki", "f": f}, "mean (ms)")
        halfmoon = table.lookup(
            {"system": "halfmoon-write", "f": f}, "mean (ms)"
        )
        return (boki - halfmoon) / boki

    assert gap(0.4) < gap(0.0) + 0.05


def test_latency_grows_with_failure_rate(table):
    for system in ("boki", "halfmoon-write"):
        low = table.lookup({"system": system, "f": 0.0}, "mean (ms)")
        high = table.lookup({"system": system, "f": 0.4}, "mean (ms)")
        assert high > low


class TestAnalyticalModel:
    def test_break_even_matches_advantage(self):
        assert break_even_failure_rate(0.30) == pytest.approx(0.30)

    def test_model_boundary_behaviour(self):
        x = 0.30
        assert halfmoon_wins(0.29, x)
        assert not halfmoon_wins(0.31, x)

    def test_model_with_costly_symmetric_replay(self):
        """The extended-version claim: with a 30% advantage and replay
        that is not free, Halfmoon still wins at f = 0.4."""
        assert halfmoon_wins(0.40, 0.30, replay_discount=0.30)

    def test_costs_increase_in_f(self):
        costs = [expected_cost_halfmoon(f, 0.3) for f in F_VALUES]
        assert costs == sorted(costs)
        flat = [expected_cost_symmetric(f, 0.0) for f in F_VALUES]
        assert flat == [1.0] * len(F_VALUES)


class TestCheckpointAblation:
    """Section 7's recovery speed-up: opportunistic read checkpoints
    shrink replay cost without touching failure-free latency."""

    @pytest.fixture(scope="class")
    def sweep(self):
        from repro import ProtocolConfig, SystemConfig
        from repro.harness.recovery_exp import run_recovery_point

        def measure(checkpointing, f):
            config = SystemConfig(
                seed=61,
                protocol=ProtocolConfig(
                    checkpoint_log_free_reads=checkpointing
                ),
            )
            return run_recovery_point(
                "halfmoon-read", f, read_ratio=0.8, config=config,
                requests=scaled(200, 800),
            )

        return {
            (ckpt, f): measure(ckpt, f)
            for ckpt in (False, True)
            for f in (0.0, 0.3)
        }

    def test_checkpoint_table(self, benchmark, save_table, sweep):
        from repro.harness.report import ExperimentTable

        run_once(benchmark, lambda: None)
        table = ExperimentTable(
            "Ablation: opportunistic read checkpointing "
            "(halfmoon-read, read ratio 0.8)",
            ["variant", "f", "mean (ms)"],
        )
        for (ckpt, f), recorder in sweep.items():
            table.add_row(
                "checkpointed" if ckpt else "plain", f, recorder.mean()
            )
        table.add_note(
            "checkpoints are free when failure-free and cut replay cost "
            "under crashes"
        )
        save_table("ablation_checkpointing", table)

    def test_free_when_failure_free(self, sweep):
        plain = sweep[(False, 0.0)].mean()
        checkpointed = sweep[(True, 0.0)].mean()
        assert checkpointed == pytest.approx(plain, rel=0.05)

    def test_cheaper_recovery_under_crashes(self, sweep):
        plain = sweep[(False, 0.3)].mean()
        checkpointed = sweep[(True, 0.3)].mean()
        assert checkpointed < plain
